//! Sharded deployment tier: scatter-gather querying over disjoint shards,
//! with epoch-versioned live republication and standby failover.
//!
//! One logical dataset is split by the owner into `S` disjoint shards (see
//! [`crate::partition`]), each hosted by its own [`QueryService`] over its
//! own authenticated structure and per-shard signing key. A
//! [`ShardedClient`] scatters every query to all shards, cryptographically
//! verifies each per-shard response via [`vaq_authquery::client::verify`]
//! under that shard's attested key, and merges the per-shard answers into
//! the logical answer.
//!
//! # Why the merged answer is sound and complete
//!
//! * Every per-shard response is verified sound and complete *within its
//!   shard* by the paper's protocol.
//! * The owner's [`SignedShardMap`] attests the exact shard count, each
//!   shard's record count and each shard's verification key — so no shard
//!   can be dropped (the client refuses to answer unless all `S` shards
//!   respond and verify) and no shard can impersonate another (its response
//!   would not verify under the per-shard key).
//! * The merge applies the *same* window-selection logic a single server
//!   uses ([`Query::select_window`]) to the score-sorted union of the
//!   per-shard results. For top-k and KNN, each shard returns its local
//!   top-k / k-nearest, a superset of the global answer's members from that
//!   shard; for range, each shard returns exactly its in-range records.
//!   Hence the union contains the logical answer, and selecting over it
//!   reproduces exactly what one server hosting all records would return.
//!
//! # Live updates: epochs
//!
//! The attested map carries a monotonically increasing **publication
//! epoch**, and every signature in every shard's authenticated structure is
//! bound to that epoch (see [`vaq_authquery::verify_at_epoch`]). A client
//! pins every scatter leg to its map's epoch
//! ([`vaq_wire::Request::QueryAt`]), so a merged answer can never mix
//! epochs across shards: a shard serving a different epoch answers with a
//! typed [`vaq_wire::ErrorCode::StaleEpoch`] error, the client re-fetches
//! the signed map over the wire ([`ShardedClient::refresh`]) and retries.
//! Refresh rejects rollback — a replayed older signed map can never replace
//! a newer one — and a replayed *response* from a superseded epoch fails
//! signature verification because its signatures bind the old epoch.
//!
//! # Failover: standbys
//!
//! Each map entry lists every address serving that shard (primary first,
//! standbys after); all of them hold the same shard data under the same
//! attested per-shard key. When a scatter leg dies mid-query, the client
//! retries that leg against the remaining attested addresses — the standby
//! handshake and response verify against the very same map entry, so the
//! takeover cannot weaken the completeness argument.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{PublicKey, SignatureScheme};
use vaq_funcdb::{Dataset, FunctionTemplate, Record};
use vaq_wire::{
    ErrorCode, Request, Response, ShardEntry, SignedShardMap, StatsDeep, StatsSnapshot,
};

use crate::client::ServiceClient;
use crate::config::{ServiceConfig, ShardRole};
use crate::error::ServiceError;
use crate::partition::{attest_shard_map, partition_dataset, verify_shard_map, PartitionStrategy};
use crate::server::QueryService;

/// Everything a data user needs to query and verify a sharded deployment:
/// the attested shard map, the owner's master public key and the shared
/// function template. Published out of band, like the paper's
/// [`vaq_authquery::PublishedMetadata`].
#[derive(Clone, Debug)]
pub struct ShardedPublication {
    /// The owner-signed partition description (carries the epoch and every
    /// serving address per shard).
    pub shard_map: SignedShardMap,
    /// The owner's master public key (verifies the shard map itself).
    pub master_key: PublicKey,
    /// The utility-function template shared by every shard.
    pub template: FunctionTemplate,
}

/// An owner-launched sharded deployment: `S` primary [`QueryService`]s (plus
/// optional standby replicas per shard), each hosting one disjoint shard of
/// one logical dataset under its own signing key, plus the attested shard
/// map clients verify against.
///
/// In production the services would run on separate hosts; this harness
/// wires the same objects up in one process, which is exactly what the
/// integration suite and the `sharded_throughput` benchmark need — the wire
/// protocol, verification and merge paths are identical either way.
pub struct ShardedDeployment {
    /// `None` marks a primary stopped via [`ShardedDeployment::stop_shard`];
    /// indices stay aligned with shard ids and [`ShardedDeployment::addrs`].
    primaries: Vec<Option<QueryService>>,
    /// Standby replicas per shard, each holding the same shard data and key
    /// as its primary.
    standbys: Vec<Vec<QueryService>>,
    /// Primary addresses, in shard-id order.
    addrs: Vec<SocketAddr>,
    /// Every address serving each shard (primary first, standbys after) —
    /// the lists the attested map carries.
    shard_addrs: Vec<Vec<SocketAddr>>,
    /// Per-shard signing keys, kept so a republication re-signs each shard
    /// under the same attested key.
    schemes: Vec<SignatureScheme>,
    /// The owner's master key, kept to re-sign the map at each epoch.
    master: SignatureScheme,
    mode: SigningMode,
    strategy: PartitionStrategy,
    epoch: u64,
    publication: ShardedPublication,
}

impl std::fmt::Debug for ShardedDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDeployment")
            .field("shards", &self.primaries.len())
            .field("standbys_per_shard", &self.standbys.first().map(Vec::len))
            .field("epoch", &self.epoch)
            .field("addrs", &self.addrs)
            .finish()
    }
}

impl ShardedDeployment {
    /// Partitions `dataset` round-robin into `shard_count` shards, builds an
    /// IFMH-tree per shard under a fresh per-shard RSA key (derived from
    /// `seed`), signs the shard map with a fresh master key, and binds one
    /// [`QueryService`] per shard using `base_config` (whose bind address
    /// must carry port 0 so every shard gets its own ephemeral port).
    pub fn launch(
        dataset: &Dataset,
        shard_count: usize,
        mode: SigningMode,
        seed: u64,
        base_config: ServiceConfig,
    ) -> Result<ShardedDeployment, ServiceError> {
        Self::launch_with_standbys(dataset, shard_count, mode, seed, base_config, 0)
    }

    /// Like [`ShardedDeployment::launch`], additionally binding
    /// `standby_count` standby [`QueryService`]s per shard. Each standby
    /// hosts the same shard data under the same per-shard signing key, and
    /// every serving address is listed (primary first) in the attested map
    /// entry — which is what lets a [`ShardedClient`] fail a dead scatter
    /// leg over without weakening verification.
    pub fn launch_with_standbys(
        dataset: &Dataset,
        shard_count: usize,
        mode: SigningMode,
        seed: u64,
        base_config: ServiceConfig,
        standby_count: usize,
    ) -> Result<ShardedDeployment, ServiceError> {
        if (shard_count > 1 || standby_count > 0) && base_config.bind_addr.port() != 0 {
            return Err(ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a multi-service deployment needs an ephemeral bind port (port 0)",
            )));
        }
        let strategy = PartitionStrategy::RoundRobin;
        let shards = partition_dataset(dataset, shard_count, strategy);
        // Distinct keys per shard: a compromised shard cannot answer with
        // another shard's validly signed data, because the client verifies
        // shard i's responses under shard i's attested key.
        let schemes: Vec<SignatureScheme> = (0..shard_count)
            .map(|i| SignatureScheme::new_rsa(128, seed.wrapping_add(1 + i as u64)))
            .collect();
        let master = SignatureScheme::new_rsa(128, seed);
        let epoch = 0u64;

        let mut primaries = Vec::with_capacity(shard_count);
        let mut standbys: Vec<Vec<QueryService>> = Vec::with_capacity(shard_count);
        let mut addrs = Vec::with_capacity(shard_count);
        let mut shard_addrs: Vec<Vec<SocketAddr>> = Vec::with_capacity(shard_count);
        for (shard_id, (shard_dataset, scheme)) in shards.iter().zip(&schemes).enumerate() {
            let role = ShardRole {
                shard_id: shard_id as u32,
                shard_count: shard_count as u32,
            };
            let mut replica_addrs = Vec::with_capacity(1 + standby_count);
            let mut replicas = Vec::with_capacity(1 + standby_count);
            // One build per shard; the replicas share clones, so every
            // signature a client sees is identical across the primary and
            // its standbys by construction (and the owner pays the
            // LP-oracle pass and the signatures once, not once per
            // replica).
            let tree = IfmhTree::build_at_epoch(shard_dataset, mode, scheme, epoch);
            for _replica in 0..=standby_count {
                let config = base_config.clone().shard_role(role);
                let service =
                    QueryService::bind(config, Server::new(shard_dataset.clone(), tree.clone()))?;
                replica_addrs.push(service.local_addr());
                replicas.push(service);
            }
            addrs.push(replica_addrs[0]);
            shard_addrs.push(replica_addrs);
            let mut replicas = replicas.into_iter();
            primaries.push(replicas.next());
            standbys.push(replicas.collect());
        }

        let keys: Vec<PublicKey> = schemes.iter().map(|s| s.public_key()).collect();
        let shard_map = attest_shard_map(&shards, &keys, &master, epoch, &shard_addrs);
        let publication = ShardedPublication {
            shard_map: shard_map.clone(),
            master_key: master.public_key(),
            template: dataset.template.clone(),
        };
        let deployment = ShardedDeployment {
            primaries,
            standbys,
            addrs,
            shard_addrs,
            schemes,
            master,
            mode,
            strategy,
            epoch,
            publication,
        };
        deployment.push_shard_map(&shard_map)?;
        Ok(deployment)
    }

    /// Hands the current signed map to every live service so clients can
    /// re-fetch it over the wire ([`vaq_wire::Request::ShardMap`]).
    fn push_shard_map(&self, map: &SignedShardMap) -> Result<(), ServiceError> {
        for service in self.live_services() {
            service.set_shard_map(map.clone())?;
        }
        Ok(())
    }

    fn live_services(&self) -> impl Iterator<Item = &QueryService> {
        self.primaries
            .iter()
            .flatten()
            .chain(self.standbys.iter().flatten())
    }

    /// Republishes the logical dataset: re-partitions `dataset`, rebuilds
    /// every shard's authenticated structure **at the next epoch** under
    /// the same per-shard keys, re-signs the shard map with the master key,
    /// and hot-swaps every live service (primaries and standbys) without
    /// dropping a connection.
    ///
    /// Services flip one at a time, so a scatter pinned to either epoch can
    /// transiently observe a mix of old- and new-epoch shards; the
    /// epoch-pinned protocol turns that into typed
    /// [`vaq_wire::ErrorCode::StaleEpoch`] rejections (never a mixed-epoch
    /// merge), and clients converge by re-fetching the map. Returns the new
    /// epoch.
    pub fn republish(&mut self, dataset: &Dataset) -> Result<u64, ServiceError> {
        let epoch = vaq_wire::epoch::next(self.epoch);
        let shard_count = self.primaries.len();
        let shards = partition_dataset(dataset, shard_count, self.strategy);
        let keys: Vec<PublicKey> = self.schemes.iter().map(|s| s.public_key()).collect();
        let shard_map = attest_shard_map(&shards, &keys, &self.master, epoch, &self.shard_addrs);

        for (shard_id, shard_dataset) in shards.iter().enumerate() {
            let scheme = &self.schemes[shard_id];
            let primary = self.primaries[shard_id].iter();
            let replicas = primary.chain(self.standbys[shard_id].iter());
            // One rebuild per shard, cloned into every replica — this keeps
            // the rollout window (during which stale-epoch rejections are
            // served) as short as the owner can make it.
            let tree = IfmhTree::build_at_epoch(shard_dataset, self.mode, scheme, epoch);
            for service in replicas {
                service.republish(Server::new(shard_dataset.clone(), tree.clone()))?;
            }
        }
        self.push_shard_map(&shard_map)?;
        self.epoch = epoch;
        self.publication.shard_map = shard_map;
        self.publication.template = dataset.template.clone();
        Ok(epoch)
    }

    /// The primary addresses the shards listen on, in shard-id order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Every address serving each shard (primary first, standbys after).
    pub fn shard_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.shard_addrs
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.primaries.len()
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The verification material a data user needs (shard map, master key,
    /// template).
    pub fn publication(&self) -> &ShardedPublication {
        &self.publication
    }

    /// Connects a verifying scatter-gather client to this deployment's
    /// primaries.
    pub fn client(&self) -> Result<ShardedClient, ServiceError> {
        ShardedClient::connect(&self.addrs, &self.publication)
    }

    /// Per-shard counter snapshots for the primaries still running, in
    /// shard-id order.
    pub fn stats(&self) -> Vec<StatsSnapshot> {
        self.primaries.iter().flatten().map(|s| s.stats()).collect()
    }

    /// Per-shard deep stats for the primaries still running, in shard-id
    /// order.
    pub fn stats_deep(&self) -> Vec<StatsDeep> {
        self.primaries
            .iter()
            .flatten()
            .map(|s| s.stats_deep())
            .collect()
    }

    /// Shuts down one shard's primary (simulating a shard outage; any
    /// standbys keep serving) and returns its final stats. Panics if
    /// `shard_id` is out of range or the primary is already down.
    pub fn stop_shard(&mut self, shard_id: usize) -> StatsSnapshot {
        self.primaries[shard_id]
            .take()
            // lint:allow(panic-path, documented panic in an owner-side test-harness API; never runs on the serving hot path)
            .unwrap_or_else(|| panic!("shard {shard_id} primary is already down"))
            .shutdown()
    }

    /// Stops every still-running service (primaries, then standbys) and
    /// returns the primaries' final stats in shard-id order.
    pub fn shutdown(self) -> Vec<StatsSnapshot> {
        let stats = self
            .primaries
            .into_iter()
            .flatten()
            .map(|s| s.shutdown())
            .collect();
        for standby in self.standbys.into_iter().flatten() {
            standby.shutdown();
        }
        stats
    }
}

/// One shard connection plus its attested identity and current address.
struct ShardConnection {
    entry: ShardEntry,
    client: ServiceClient,
    addr: SocketAddr,
}

/// Per-shard scatter-leg latency accumulator: how many legs this shard
/// answered, their summed wall-clock micros and the slowest single leg.
/// Timed from the gather-side read to the verified interpretation, so a
/// shard that straggles (or keeps needing failover) shows up here even when
/// every merged answer succeeds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LegLatency {
    /// Scatter legs this shard completed (successfully or not).
    pub legs: u64,
    /// Summed leg wall-clock, in microseconds.
    pub total_micros: u64,
    /// Slowest single leg, in microseconds.
    pub max_micros: u64,
}

impl LegLatency {
    fn record(&mut self, micros: u64) {
        self.legs += 1;
        self.total_micros += micros;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Mean leg latency in microseconds (0 before any leg completed).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.legs).unwrap_or(0)
    }
}

/// Client-side observability for a [`ShardedClient`]: what the scatter side
/// of the deployment looked like from this client's seat. Server-side stats
/// ([`ShardedClient::stats_deep_all`]) say what each shard did; these
/// counters say what the *client* experienced — straggling legs, standby
/// takeovers, update churn — which no single server can see.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientObservability {
    /// Scatter rounds issued (one per query or batch, counting retries).
    pub scatters: u64,
    /// Per-shard scatter-leg latency, in shard-id order.
    pub leg_latency: Vec<LegLatency>,
    /// Failover activations: legs retried against a standby address after
    /// the serving connection died mid-query.
    pub failovers: u64,
    /// Scatter legs rejected with a typed stale-epoch error (the deployment
    /// republished under this client's pinned epoch).
    pub stale_rejections: u64,
    /// Signed-map refreshes that actually adopted a newer epoch.
    pub map_refreshes: u64,
}

impl ClientObservability {
    fn leg(&mut self, shard: usize) -> &mut LegLatency {
        if self.leg_latency.len() <= shard {
            self.leg_latency.resize(shard + 1, LegLatency::default());
        }
        &mut self.leg_latency[shard]
    }

    /// The slowest single scatter leg observed on any shard, in micros.
    pub fn max_leg_micros(&self) -> u64 {
        self.leg_latency
            .iter()
            .map(|l| l.max_micros)
            .max()
            .unwrap_or(0)
    }
}

/// The merged, fully verified answer to one sharded query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Result records in ascending score order — the same order (and for
    /// datasets with in-order record ids, the same bytes) a single server
    /// hosting the whole dataset would return.
    pub records: Vec<Record>,
    /// The verified score of each result record, in result order.
    pub scores: Vec<f64>,
    /// How many records each shard contributed to the candidate set (not
    /// the final answer), in shard-id order.
    pub per_shard_returned: Vec<usize>,
}

/// How long a failover connect to a standby address may take.
const FAILOVER_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// A verifying scatter-gather front-end over a sharded deployment.
///
/// Holds one [`ServiceClient`] per shard. Every query is pinned to the
/// client's verified map epoch and sent to all shards (pipelined: all
/// requests go out before the first response is read), each response is
/// verified under that shard's attested key **at that epoch**, and the
/// verified per-shard answers are merged. A shard failure is retried
/// against the shard's attested standby addresses; if no address serves the
/// leg, the whole query fails with a typed [`ServiceError::ShardFailed`] —
/// there are never silent partial answers. A typed stale-epoch rejection
/// (the deployment republished) is surfaced so the caller can
/// [`ShardedClient::refresh`] and retry at the new epoch.
pub struct ShardedClient {
    shards: Vec<ShardConnection>,
    template: FunctionTemplate,
    master_key: PublicKey,
    total_records: u64,
    epoch: u64,
    obs: ClientObservability,
}

impl std::fmt::Debug for ShardedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClient")
            .field("shards", &self.shards.len())
            .field("total_records", &self.total_records)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Opens one shard connection and handshakes its identity — shard id,
/// deployment size, record count **and serving epoch** — against the
/// verified map.
fn open_shard_connection(
    addr: SocketAddr,
    entry: &ShardEntry,
    shard_count: u32,
    epoch: u64,
) -> Result<ShardConnection, ServiceError> {
    let mut client = ServiceClient::connect_timeout(&addr, FAILOVER_CONNECT_TIMEOUT)?;
    let info = client.shard_info()?;
    if info.shard_id != entry.shard_id
        || info.shard_count != shard_count
        || info.records != entry.records
    {
        return Err(ServiceError::ShardMap(format!(
            "{addr} reports shard {}/{} with {} records, map attests shard {}/{} with {}",
            info.shard_id,
            info.shard_count,
            info.records,
            entry.shard_id,
            shard_count,
            entry.records
        )));
    }
    if info.epoch != epoch {
        return Err(ServiceError::StaleEpoch {
            expected: epoch,
            got: info.epoch,
        });
    }
    Ok(ShardConnection {
        entry: entry.clone(),
        client,
        addr,
    })
}

/// The attested failover candidates for one map entry, excluding `current`.
fn failover_candidates(entry: &ShardEntry, current: SocketAddr) -> Vec<SocketAddr> {
    entry
        .addrs
        .iter()
        .filter_map(|a| a.parse().ok())
        .filter(|a| *a != current)
        .collect()
}

/// True when a scatter-leg failure is a transport-level outage worth
/// retrying on a standby (as opposed to a verification failure, an epoch
/// mismatch or a protocol rejection, which a standby holding the same data
/// would reproduce — or worse, mask).
fn is_failover_worthy(error: &ServiceError) -> bool {
    match error {
        ServiceError::Io(_) => true,
        ServiceError::Remote(reply) => reply.code == ErrorCode::ShuttingDown,
        _ => false,
    }
}

impl ShardedClient {
    /// Verifies the published shard map, connects to every shard and
    /// handshakes each connection's shard identity (including the serving
    /// epoch) against the map.
    ///
    /// `addrs[i]` must host the shard the map lists as shard `i`; a
    /// mismatch (wrong shard id, wrong deployment size, wrong record count,
    /// wrong epoch) is rejected with a typed error before any query runs.
    pub fn connect(
        addrs: &[SocketAddr],
        publication: &ShardedPublication,
    ) -> Result<ShardedClient, ServiceError> {
        verify_shard_map(&publication.shard_map, &publication.master_key)?;
        let map = &publication.shard_map.map;
        if addrs.len() != map.shards.len() {
            return Err(ServiceError::ShardMap(format!(
                "{} addresses for {} attested shards",
                addrs.len(),
                map.shards.len()
            )));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for (entry, addr) in map.shards.iter().zip(addrs) {
            let connection = open_shard_connection(*addr, entry, map.shard_count, map.epoch)
                .map_err(|e| shard_failed(entry.shard_id, e))?;
            shards.push(connection);
        }
        Ok(ShardedClient {
            shards,
            template: publication.template.clone(),
            master_key: publication.master_key.clone(),
            total_records: map.total_records,
            epoch: map.epoch,
            obs: ClientObservability::default(),
        })
    }

    /// Connects using the serving addresses the attested map itself lists,
    /// trying each shard's addresses in order (primary first, standbys
    /// after) until one handshakes.
    pub fn connect_from_map(
        publication: &ShardedPublication,
    ) -> Result<ShardedClient, ServiceError> {
        verify_shard_map(&publication.shard_map, &publication.master_key)?;
        let map = &publication.shard_map.map;
        let mut shards = Vec::with_capacity(map.shards.len());
        for entry in &map.shards {
            let candidates: Vec<SocketAddr> =
                entry.addrs.iter().filter_map(|a| a.parse().ok()).collect();
            if candidates.is_empty() {
                return Err(ServiceError::ShardMap(format!(
                    "map entry for shard {} lists no usable addresses",
                    entry.shard_id
                )));
            }
            let mut last_error = None;
            let mut connected = None;
            for addr in candidates {
                match open_shard_connection(addr, entry, map.shard_count, map.epoch) {
                    Ok(connection) => {
                        connected = Some(connection);
                        break;
                    }
                    Err(e) => last_error = Some(e),
                }
            }
            match connected {
                Some(connection) => shards.push(connection),
                None => {
                    // Reached with `last_error == None` only if the candidate
                    // list was empty, which the guard above already rejects —
                    // but a signed map is attacker-shaped input, so fail typed
                    // instead of trusting that with a panic.
                    return Err(shard_failed(
                        entry.shard_id,
                        last_error.unwrap_or_else(|| {
                            ServiceError::ShardMap(format!(
                                "map entry for shard {} lists no usable addresses",
                                entry.shard_id
                            ))
                        }),
                    ));
                }
            }
        }
        Ok(ShardedClient {
            shards,
            template: publication.template.clone(),
            master_key: publication.master_key.clone(),
            total_records: map.total_records,
            epoch: map.epoch,
            obs: ClientObservability::default(),
        })
    }

    /// Number of shards this client scatters to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The publication epoch this client currently pins every query to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Client-side observability accumulated since this client connected:
    /// per-shard scatter-leg latency, failover activations, stale-epoch
    /// rejections and adopted map refreshes. Counters survive
    /// [`ShardedClient::refresh`] — adopting a new epoch reconnects the
    /// shards but keeps the client's history.
    pub fn observability(&self) -> &ClientObservability {
        &self.obs
    }

    /// Re-fetches the signed shard map over the wire and adopts it.
    ///
    /// Called after a typed stale-epoch rejection told the client the
    /// deployment republished. The offered map must verify under the same
    /// master key and must carry a **strictly newer** epoch than the one
    /// the client already verified — an older (replayed) signed map is
    /// rejected with [`ServiceError::StaleEpoch`], so a client can never be
    /// rolled back to a superseded publication. On success every shard
    /// connection is re-opened against the new map's address lists; returns
    /// the adopted epoch. A same-epoch offer leaves the client unchanged.
    pub fn refresh(&mut self) -> Result<u64, ServiceError> {
        let offered = self.fetch_map()?;
        self.adopt_map(offered)
    }

    /// Fetches the current signed map from any reachable serving address.
    fn fetch_map(&mut self) -> Result<SignedShardMap, ServiceError> {
        let mut last_error: Option<ServiceError> = None;
        for shard in &mut self.shards {
            // Prefer the live connection; fall back to a fresh socket per
            // attested address (the old connection may be desynced or dead).
            match shard.client.shard_map() {
                Ok(map) => return Ok(map),
                Err(e) => last_error = Some(e),
            }
            for addr in shard.entry.addrs.iter().filter_map(|a| a.parse().ok()) {
                let attempt = ServiceClient::connect_timeout(&addr, FAILOVER_CONNECT_TIMEOUT)
                    .and_then(|mut fresh| fresh.shard_map());
                match attempt {
                    Ok(map) => return Ok(map),
                    Err(e) => last_error = Some(e),
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            ServiceError::ShardMap("no shard connection to fetch the map from".into())
        }))
    }

    /// Verifies an offered signed map and, when it is strictly newer than
    /// the one this client already verified, reconnects every shard against
    /// it. This is the rollback gate: a map carrying an *older* epoch — a
    /// replayed earlier publication, however validly signed — is rejected
    /// with [`ServiceError::StaleEpoch`], and a same-epoch offer is a
    /// no-op. Used by [`ShardedClient::refresh`] for maps fetched over the
    /// wire, and callable directly for maps distributed out of band.
    pub fn adopt_map(&mut self, offered: SignedShardMap) -> Result<u64, ServiceError> {
        verify_shard_map(&offered, &self.master_key)?;
        if vaq_wire::epoch::rolls_back(self.epoch, offered.map.epoch) {
            return Err(ServiceError::StaleEpoch {
                expected: self.epoch,
                got: offered.map.epoch,
            });
        }
        if offered.map.epoch == self.epoch {
            return Ok(self.epoch);
        }
        let map = &offered.map;
        let mut shards = Vec::with_capacity(map.shards.len());
        for entry in &map.shards {
            let mut candidates: Vec<SocketAddr> =
                entry.addrs.iter().filter_map(|a| a.parse().ok()).collect();
            if candidates.is_empty() {
                // Entries without attested addresses fall back to the
                // address this client already used for the shard.
                if let Some(existing) = self.shards.get(entry.shard_id as usize) {
                    candidates.push(existing.addr);
                }
            }
            let mut last_error = None;
            let mut connected = None;
            for addr in candidates {
                match open_shard_connection(addr, entry, map.shard_count, map.epoch) {
                    Ok(connection) => {
                        connected = Some(connection);
                        break;
                    }
                    Err(e) => last_error = Some(e),
                }
            }
            match connected {
                Some(connection) => shards.push(connection),
                None => {
                    return Err(shard_failed(
                        entry.shard_id,
                        last_error.unwrap_or_else(|| {
                            ServiceError::ShardMap("no usable address for shard".into())
                        }),
                    ))
                }
            }
        }
        self.shards = shards;
        self.total_records = map.total_records;
        self.epoch = map.epoch;
        self.obs.map_refreshes += 1;
        Ok(self.epoch)
    }

    /// Scatters `query` to every shard pinned to the client's map epoch,
    /// verifies every per-shard response under its attested key at that
    /// epoch, and merges the results into the logical answer (ascending
    /// score order, exactly as a single server over the whole dataset would
    /// return). A dead scatter leg is retried against the shard's attested
    /// standby addresses before the query is failed.
    pub fn query_verified(&mut self, query: &Query) -> Result<ShardedResponse, ServiceError> {
        let request = Request::QueryAt {
            epoch: self.epoch,
            query: query.clone(),
        };
        let per_shard = self.scatter_verified(&request, &|response, template, entry, epoch| {
            interpret_leg(response, query, template, entry, epoch)
        })?;

        let mut candidates: Vec<(f64, Record)> = Vec::new();
        let mut per_shard_returned = Vec::with_capacity(per_shard.len());
        for (records, scores) in per_shard {
            per_shard_returned.push(records.len());
            candidates.extend(scores.into_iter().zip(records));
        }
        merge(query, candidates, self.total_records, per_shard_returned)
    }

    /// Scatters a batch of queries to every shard in **one pinned frame per
    /// shard** ([`vaq_wire::Request::BatchAt`] at the client's map epoch),
    /// verifies every per-shard sub-response under that shard's attested
    /// key at that epoch, and merges each sub-query's candidates through
    /// the same path a single sharded query uses — so each merged answer
    /// is byte-identical to what an unsharded [`ServiceClient::batch`]
    /// returns against a single server at the same epoch.
    ///
    /// The single-query guarantees carry over per leg: a dead scatter leg
    /// fails over to the shard's attested standby addresses, a stale-epoch
    /// rejection surfaces typed (refresh the map and retry), a sub-response
    /// count that disagrees with the batch is a typed
    /// [`ServiceError::BatchArity`] protocol violation, and any
    /// unrecoverable leg fails the whole batch with
    /// [`ServiceError::ShardFailed`] — never a silent partial answer.
    ///
    /// An empty `queries` slice errors exactly like the unsharded path:
    /// the shards reject the empty batch frame with a typed `BadQuery`
    /// (surfaced as [`ServiceError::ShardFailed`]), so switching a caller
    /// between the two clients never changes whether a caller bug is
    /// surfaced.
    pub fn batch_verified(
        &mut self,
        queries: &[Query],
    ) -> Result<Vec<ShardedResponse>, ServiceError> {
        let request = Request::BatchAt {
            epoch: self.epoch,
            queries: queries.to_vec(),
        };
        let per_shard = self.scatter_verified(&request, &|response, template, entry, epoch| {
            interpret_batch_leg(response, queries, template, entry, epoch)
        })?;

        // Transpose shard-major into query-major (moving, not cloning, the
        // verified legs) and merge each sub-query exactly like a single
        // sharded query: same candidate union, same window selection, same
        // disjointness and completeness checks.
        let shard_count = per_shard.len();
        let mut per_query: Vec<Vec<VerifiedLeg>> = (0..queries.len())
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        for shard_results in per_shard {
            for (j, leg) in shard_results.into_iter().enumerate() {
                per_query[j].push(leg);
            }
        }
        queries
            .iter()
            .zip(per_query)
            .map(|(query, legs)| {
                let mut candidates: Vec<(f64, Record)> = Vec::new();
                let mut per_shard_returned = Vec::with_capacity(legs.len());
                for (records, scores) in legs {
                    per_shard_returned.push(records.len());
                    candidates.extend(scores.into_iter().zip(records));
                }
                merge(query, candidates, self.total_records, per_shard_returned)
            })
            .collect()
    }

    /// Scatters one already-pinned request to every shard as a tagged
    /// envelope (all sends go out before the first receive, so the
    /// per-shard work overlaps, and the tags keep each leg paired), gathers
    /// and interprets every leg, and retries dead legs against the attested
    /// standby addresses. Returns the interpreted legs in shard-id order,
    /// or the first unrecoverable leg failure as a typed
    /// [`ServiceError::ShardFailed`].
    ///
    /// Every in-flight response is read even after a failure, so surviving
    /// connections stay request/response aligned for the next call.
    fn scatter_verified<T>(
        &mut self,
        request: &Request,
        interpret: LegInterpreter<'_, T>,
    ) -> Result<Vec<T>, ServiceError> {
        // Scatter: put one tagged request in flight on every shard before
        // reading any response. Each leg is a multiplexed stream — the
        // correlation tag, not arrival order, pairs the reply with the
        // request, so a shard connection shared with other in-flight work
        // still gathers the right frame. A failed send is retried on a
        // standby during the gather phase.
        self.obs.scatters += 1;
        let mut sent: Vec<Option<u64>> = vec![None; self.shards.len()];
        for (i, shard) in self.shards.iter_mut().enumerate() {
            sent[i] = shard.client.send_tagged(request).ok();
        }

        let mut results: Vec<T> = Vec::with_capacity(self.shards.len());
        let mut failure: Option<ServiceError> = None;
        for (i, &tag) in sent.iter().enumerate() {
            let leg_started = Instant::now();
            let outcome = if let Some(tag) = tag {
                let epoch = self.epoch;
                let template = &self.template;
                let shard = &mut self.shards[i];
                shard
                    .client
                    .receive_tagged(tag)
                    .and_then(|response| interpret(response, template, &shard.entry, epoch))
            } else {
                Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "scatter send failed",
                )))
            };
            let outcome = match outcome {
                Err(e) if is_failover_worthy(&e) => self.failover_leg(i, request, interpret, e),
                other => other,
            };
            // The leg spans receive-through-verify (plus any failover), so a
            // straggling or flapping shard is visible per shard id.
            let leg_micros = leg_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.obs.leg(i).record(leg_micros);
            match outcome {
                Ok(result) => results.push(result),
                Err(e) => {
                    if e.is_stale_epoch() {
                        self.obs.stale_rejections += 1;
                    }
                    if failure.is_none() {
                        failure = Some(shard_failed(self.shards[i].entry.shard_id, e));
                    }
                }
            }
        }
        match failure {
            Some(error) => Err(error),
            None => Ok(results),
        }
    }

    /// Retries one failed scatter leg against the shard's attested standby
    /// addresses. On success the standby connection replaces the dead one.
    ///
    /// Two standby-side failures are *not* smoothed over by trying further
    /// candidates or reporting the original transport error instead:
    ///
    /// * a **stale-epoch** rejection (handshake or reply) — the shard moved
    ///   to a new publication, and the caller must see a stale-epoch error
    ///   so it refreshes the signed map and re-pins, rather than treating
    ///   the leg as a plain outage and giving up;
    /// * a **verification failure** — a standby serving data that does not
    ///   verify under the attested key must surface, never be masked by a
    ///   retry.
    ///
    /// Only transport-level failures fall through to the next candidate;
    /// with no candidate left, the original error is returned.
    fn failover_leg<T>(
        &mut self,
        index: usize,
        request: &Request,
        interpret: LegInterpreter<'_, T>,
        original: ServiceError,
    ) -> Result<T, ServiceError> {
        let entry = self.shards[index].entry.clone();
        let current = self.shards[index].addr;
        let epoch = self.epoch;
        let shard_count = self.shards.len() as u32;
        self.obs.failovers += 1;
        for addr in failover_candidates(&entry, current) {
            let mut connection = match open_shard_connection(addr, &entry, shard_count, epoch) {
                Ok(connection) => connection,
                Err(e) if e.is_stale_epoch() => return Err(e),
                Err(_) => continue,
            };
            let outcome = connection
                .client
                .call(request)
                .and_then(|response| interpret(response, &self.template, &entry, epoch));
            match outcome {
                Ok(result) => {
                    self.shards[index] = connection;
                    return Ok(result);
                }
                Err(e) if e.is_stale_epoch() || matches!(e, ServiceError::Verification(_)) => {
                    return Err(e)
                }
                Err(_) => continue,
            }
        }
        Err(original)
    }

    /// Fetches every shard's counter snapshot, in shard-id order.
    pub fn stats_all(&mut self) -> Result<Vec<StatsSnapshot>, ServiceError> {
        self.shards
            .iter_mut()
            .map(|shard| {
                shard
                    .client
                    .stats()
                    .map_err(|e| shard_failed(shard.entry.shard_id, e))
            })
            .collect()
    }

    /// Fetches every shard's deep stats (per-stage latency histograms,
    /// per-kind stage attribution, per-error counters, cache gauges), in
    /// shard-id order.
    pub fn stats_deep_all(&mut self) -> Result<Vec<StatsDeep>, ServiceError> {
        self.shards
            .iter_mut()
            .map(|shard| {
                shard
                    .client
                    .stats_deep()
                    .map_err(|e| shard_failed(shard.entry.shard_id, e))
            })
            .collect()
    }
}

/// How one scatter leg's raw [`Response`] is checked and verified into a
/// typed result: the callback receives the response, the shared template,
/// the shard's attested map entry and the pinned epoch. One interpreter
/// exists per request shape ([`interpret_leg`] for single queries,
/// [`interpret_batch_leg`] for batches); the scatter/gather/failover
/// machinery is shared through this seam.
type LegInterpreter<'a, T> =
    &'a dyn Fn(Response, &FunctionTemplate, &ShardEntry, u64) -> Result<T, ServiceError>;

/// One verified scatter leg's contribution to one query: the records a
/// shard returned, with their verified scores in record order.
type VerifiedLeg = (Vec<Record>, Vec<f64>);

/// Rejects a leg whose envelope stamp disagrees with the pinned epoch. The
/// stamp is unauthenticated, so this is only a cheap early reject — a
/// *forged* stamp still fails [`verify_sub_response`], because the
/// response's signatures bind the real epoch.
fn check_leg_epoch(served: u64, pinned: u64) -> Result<(), ServiceError> {
    if served != pinned {
        return Err(ServiceError::StaleEpoch {
            expected: pinned,
            got: served,
        });
    }
    Ok(())
}

/// Verifies one per-query response from one shard — records + VO under the
/// shard's attested key, at the pinned epoch — and returns the verified
/// (records, scores). The single security-sensitive verification step, one
/// copy shared by the single-query and batch interpreters.
fn verify_sub_response(
    query: &Query,
    response: vaq_authquery::QueryResponse,
    template: &FunctionTemplate,
    entry: &ShardEntry,
    epoch: u64,
) -> Result<VerifiedLeg, ServiceError> {
    let verified = client::verify_at_epoch(
        query,
        &response.records,
        &response.vo,
        template,
        &entry.public_key,
        epoch,
    )?;
    Ok((response.records, verified.scores))
}

/// Interprets one scatter-leg response: checks the envelope epoch stamp,
/// verifies the records + VO under the shard's attested key at the pinned
/// epoch, and returns the verified (records, scores).
fn interpret_leg(
    response: Response,
    query: &Query,
    template: &FunctionTemplate,
    entry: &ShardEntry,
    epoch: u64,
) -> Result<VerifiedLeg, ServiceError> {
    match response {
        Response::Query {
            epoch: served,
            response,
        } => {
            check_leg_epoch(served, epoch)?;
            verify_sub_response(query, response, template, entry, epoch)
        }
        other => Err(crate::client::unexpected(&other)),
    }
}

/// Interprets one batch scatter-leg response: checks the envelope epoch
/// stamp and the answer arity against the batch, then verifies every
/// sub-response's records + VO under the shard's attested key at the
/// pinned epoch. Returns the verified (records, scores) per query, in
/// query order.
fn interpret_batch_leg(
    response: Response,
    queries: &[Query],
    template: &FunctionTemplate,
    entry: &ShardEntry,
    epoch: u64,
) -> Result<Vec<VerifiedLeg>, ServiceError> {
    match response {
        Response::Batch {
            epoch: served,
            responses,
        } => {
            check_leg_epoch(served, epoch)?;
            crate::client::check_batch_arity(queries.len(), &responses)?;
            queries
                .iter()
                .zip(responses)
                .map(|(query, response)| {
                    verify_sub_response(query, response, template, entry, epoch)
                })
                .collect()
        }
        other => Err(crate::client::unexpected(&other)),
    }
}

fn shard_failed(shard_id: u32, error: ServiceError) -> ServiceError {
    ServiceError::ShardFailed {
        shard_id,
        error: Box::new(error),
    }
}

/// Merges verified per-shard candidates into the logical answer by sorting
/// the union in ascending (score, record id) order — the same total order a
/// single server's authenticated list uses — and applying the query's own
/// window selection to it.
fn merge(
    query: &Query,
    mut candidates: Vec<(f64, Record)>,
    total_records: u64,
    per_shard_returned: Vec<usize>,
) -> Result<ShardedResponse, ServiceError> {
    candidates.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.id.cmp(&b.1.id))
    });

    // Disjointness check: the attested map promises each record lives on
    // exactly one shard, so a duplicate id means a shard served data that is
    // not its own.
    let mut seen = HashSet::with_capacity(candidates.len());
    for (_, record) in &candidates {
        if !seen.insert(record.id) {
            return Err(ServiceError::ShardMap(format!(
                "record {} returned by more than one shard — shards are not disjoint",
                record.id
            )));
        }
    }

    let all_scores: Vec<f64> = candidates.iter().map(|c| c.0).collect();
    let (records, scores) = match query.select_window(&all_scores) {
        Some((start, end)) => (
            candidates[start..=end]
                .iter()
                .map(|c| c.1.clone())
                .collect(),
            all_scores[start..=end].to_vec(),
        ),
        None => (Vec::new(), Vec::new()),
    };

    // Length sanity against the *attested* dataset size: each shard returned
    // a verified min(k, n_shard) records, so the merged top-k/KNN answer
    // must hold exactly min(k, n_total). Anything else means the map and the
    // shard contents disagree.
    let expected = match query {
        Query::TopK { k, .. } | Query::Knn { k, .. } => (*k).min(total_records as usize),
        Query::Range { .. } => records.len(),
    };
    if records.len() != expected {
        return Err(ServiceError::ShardMap(format!(
            "merged answer holds {} records, the attested shard map implies {expected}",
            records.len()
        )));
    }

    Ok(ShardedResponse {
        records,
        scores,
        per_shard_returned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> Record {
        Record::new(id, vec![0.0])
    }

    #[test]
    fn merge_topk_selects_global_best_in_ascending_order() {
        // Shard A returned scores [0.9, 0.7], shard B [0.8, 0.2].
        let candidates = vec![
            (0.7, record(1)),
            (0.9, record(3)),
            (0.2, record(0)),
            (0.8, record(2)),
        ];
        let query = Query::top_k(vec![0.0], 2);
        let merged = merge(&query, candidates, 10, vec![2, 2]).unwrap();
        assert_eq!(merged.scores, vec![0.8, 0.9]);
        assert_eq!(
            merged.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 3]
        );
    }

    #[test]
    fn merge_range_concatenates_in_score_order() {
        let candidates = vec![(0.5, record(5)), (0.3, record(1)), (0.4, record(9))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        let merged = merge(&query, candidates, 10, vec![3]).unwrap();
        assert_eq!(merged.scores, vec![0.3, 0.4, 0.5]);
        assert_eq!(merged.records.len(), 3);
    }

    #[test]
    fn merge_knn_reranks_by_distance_to_target() {
        let candidates = vec![
            (0.1, record(0)),
            (0.45, record(1)),
            (0.55, record(2)),
            (0.95, record(3)),
        ];
        let query = Query::knn(vec![0.0], 2, 0.5);
        let merged = merge(&query, candidates, 4, vec![2, 2]).unwrap();
        assert_eq!(merged.scores, vec![0.45, 0.55]);
    }

    #[test]
    fn merge_rejects_duplicate_records_across_shards() {
        let candidates = vec![(0.1, record(7)), (0.2, record(7))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        assert!(matches!(
            merge(&query, candidates, 4, vec![1, 1]),
            Err(ServiceError::ShardMap(_))
        ));
    }

    #[test]
    fn merge_rejects_short_topk_answers() {
        // The attested map says 10 records exist, so top-3 must return 3.
        let candidates = vec![(0.1, record(0)), (0.2, record(1))];
        let query = Query::top_k(vec![0.0], 3);
        assert!(matches!(
            merge(&query, candidates, 10, vec![1, 1]),
            Err(ServiceError::ShardMap(_))
        ));
    }

    #[test]
    fn merge_breaks_score_ties_by_record_id() {
        let candidates = vec![(0.5, record(9)), (0.5, record(2)), (0.5, record(4))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        let merged = merge(&query, candidates, 3, vec![3]).unwrap();
        assert_eq!(
            merged.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 4, 9]
        );
    }

    #[test]
    fn failover_candidates_exclude_the_current_address_and_junk() {
        let entry = ShardEntry {
            shard_id: 0,
            records: 5,
            public_key: SignatureScheme::test_rsa(1).public_key(),
            addrs: vec![
                "127.0.0.1:4300".into(),
                "not-an-address".into(),
                "127.0.0.1:4301".into(),
            ],
        };
        let current: SocketAddr = "127.0.0.1:4300".parse().unwrap();
        let candidates = failover_candidates(&entry, current);
        assert_eq!(candidates, vec!["127.0.0.1:4301".parse().unwrap()]);
    }

    #[test]
    fn only_transport_outages_are_failover_worthy() {
        let io = ServiceError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "down"));
        assert!(is_failover_worthy(&io));
        let shutting_down = ServiceError::Remote(vaq_wire::ErrorReply {
            code: ErrorCode::ShuttingDown,
            message: "bye".into(),
        });
        assert!(is_failover_worthy(&shutting_down));
        // A stale epoch means "refresh the map", not "try a standby" — the
        // standby serves the same epoch as its primary.
        let stale = ServiceError::Remote(vaq_wire::ErrorReply {
            code: ErrorCode::StaleEpoch,
            message: "epoch moved".into(),
        });
        assert!(!is_failover_worthy(&stale));
        // A verification failure must surface, never be masked by a retry.
        let bad = ServiceError::ShardMap("not disjoint".into());
        assert!(!is_failover_worthy(&bad));
    }
}
