//! Bounded LRU cache for encoded query responses.
//!
//! Keyed by the **canonical query bytes** (the deterministic VAQ1 encoding of
//! the request), so structurally identical queries hit the same entry no
//! matter which client or connection sent them. Values are fully encoded
//! response frames, ready to write to a socket — a hit costs one map lookup
//! and one buffer clone, no re-encoding.

use crate::metrics::CacheGauges;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A cached, fully encoded response frame plus its recency stamp.
type CachedEntry = (Arc<Vec<u8>>, u64);

/// A bounded least-recently-used map from canonical query bytes to encoded
/// response frames.
///
/// Bounded twice: by entry count and by the total bytes of cached frames,
/// since one wide range query can produce a response orders of magnitude
/// larger than another. Recency is tracked with a monotone tick: every
/// access re-stamps the entry and eviction removes the smallest stamp. Both
/// structures are O(log n) / O(1) per operation, std-only.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    max_bytes: usize,
    total_bytes: usize,
    evictions: u64,
    tick: u64,
    // Keys are shared between the map and the recency index, so re-stamping
    // an entry on a hit clones an `Arc`, not the key bytes.
    entries: HashMap<Arc<[u8]>, CachedEntry>,
    order: BTreeMap<u64, Arc<[u8]>>,
}

impl LruCache {
    /// Default byte budget when none is given: 64 MiB of cached frames.
    pub const DEFAULT_MAX_BYTES: usize = 64 << 20;

    /// Creates a cache holding at most `capacity` entries (0 disables it)
    /// under the default byte budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, Self::DEFAULT_MAX_BYTES)
    }

    /// Creates a cache bounded by `capacity` entries **and** `max_bytes`
    /// total cached frame bytes (keys are not counted). Either limit at 0
    /// disables caching.
    pub fn with_byte_budget(capacity: usize, max_bytes: usize) -> Self {
        LruCache {
            capacity,
            max_bytes,
            total_bytes: 0,
            evictions: 0,
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Total bytes of cached response frames.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries evicted under LRU or byte-budget pressure since the cache
    /// was created. Republication flushes ([`LruCache::clear`]) are not
    /// counted: they drop superseded-epoch frames, not hot ones — this
    /// counter is what distinguishes a thrashing cache from a cold one.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Point-in-time occupancy gauges for stats snapshots.
    pub fn gauges(&self) -> CacheGauges {
        CacheGauges {
            entries: self.entries.len() as u64,
            bytes: self.total_bytes as u64,
            evictions: self.evictions,
        }
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a response frame, refreshing the entry's recency on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        let tick = self.next_tick();
        let (shared_key, (frame, stamp)) = self.entries.get_key_value(key)?;
        let shared_key = Arc::clone(shared_key);
        let frame = Arc::clone(frame);
        let old = *stamp;
        self.entries.get_mut(key)?.1 = tick;
        self.order.remove(&old);
        self.order.insert(tick, shared_key);
        Some(frame)
    }

    /// Inserts a response frame, evicting least recently used entries while
    /// either bound (entry count or byte budget) is exceeded. A no-op when
    /// caching is disabled or the frame alone exceeds the byte budget.
    pub fn insert(&mut self, key: Vec<u8>, frame: Arc<Vec<u8>>) {
        if self.capacity == 0 || frame.len() > self.max_bytes {
            return;
        }
        let key: Arc<[u8]> = key.into();
        let tick = self.next_tick();
        self.total_bytes += frame.len();
        if let Some((old_frame, old)) = self.entries.insert(Arc::clone(&key), (frame, tick)) {
            self.order.remove(&old);
            self.total_bytes -= old_frame.len();
        }
        self.order.insert(tick, key);
        while self.entries.len() > self.capacity || self.total_bytes > self.max_bytes {
            match self.order.pop_first() {
                Some((_, victim)) => {
                    if let Some((frame, _)) = self.entries.remove(&victim) {
                        self.total_bytes -= frame.len();
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }

    /// Drops every cached entry (used when the served dataset is
    /// republished: all cached frames answer for a superseded epoch). The
    /// recency tick keeps counting, so entries inserted after the flush
    /// order correctly against any concurrent insert.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.total_bytes = 0;
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(byte: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![byte; 4])
    }

    #[test]
    fn hit_returns_inserted_frame() {
        let mut cache = LruCache::new(4);
        cache.insert(b"q1".to_vec(), frame(1));
        assert_eq!(cache.get(b"q1").unwrap().as_slice(), &[1, 1, 1, 1]);
        assert!(cache.get(b"q2").is_none());
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"b".to_vec(), frame(2));
        // Touch `a` so `b` becomes the LRU victim.
        cache.get(b"a").unwrap();
        cache.insert(b"c".to_vec(), frame(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(b"a").is_some());
        assert!(cache.get(b"b").is_none(), "b was the LRU entry");
        assert!(cache.get(b"c").is_some());
    }

    #[test]
    fn reinsert_replaces_value_without_growing() {
        let mut cache = LruCache::new(2);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"a".to_vec(), frame(9));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(b"a").unwrap().as_slice(), &[9, 9, 9, 9]);
    }

    #[test]
    fn clear_flushes_everything_and_resets_accounting() {
        let mut cache = LruCache::new(4);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"b".to_vec(), frame(2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.total_bytes(), 0);
        assert!(cache.get(b"a").is_none());
        // The cache keeps working after a flush.
        cache.insert(b"c".to_vec(), frame(3));
        assert_eq!(cache.get(b"c").unwrap().as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(b"a".to_vec(), frame(1));
        assert!(cache.is_empty());
        assert!(cache.get(b"a").is_none());
    }

    #[test]
    fn evictions_are_counted_but_clears_are_not() {
        let mut cache = LruCache::new(2);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"b".to_vec(), frame(2));
        assert_eq!(cache.evictions(), 0);
        cache.insert(b"c".to_vec(), frame(3)); // evicts "a"
        cache.insert(b"d".to_vec(), frame(4)); // evicts "b"
        assert_eq!(cache.evictions(), 2);
        // Reinsert replaces in place: no eviction.
        cache.insert(b"d".to_vec(), frame(5));
        assert_eq!(cache.evictions(), 2);
        // A republication flush is not LRU pressure.
        cache.clear();
        assert_eq!(cache.evictions(), 2);
        let gauges = cache.gauges();
        assert_eq!(gauges.entries, 0);
        assert_eq!(gauges.bytes, 0);
        assert_eq!(gauges.evictions, 2);
    }

    #[test]
    fn gauges_track_occupancy() {
        let mut cache = LruCache::new(4);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"b".to_vec(), frame(2));
        let gauges = cache.gauges();
        assert_eq!(gauges.entries, 2);
        assert_eq!(gauges.bytes, 8);
        assert_eq!(gauges.evictions, 0);
    }

    #[test]
    fn byte_budget_bounds_total_cached_bytes() {
        // Budget of 10 bytes; each frame is 4 bytes, so at most 2 fit.
        let mut cache = LruCache::with_byte_budget(100, 10);
        cache.insert(b"a".to_vec(), frame(1));
        cache.insert(b"b".to_vec(), frame(2));
        cache.insert(b"c".to_vec(), frame(3));
        assert!(cache.total_bytes() <= 10, "{} bytes", cache.total_bytes());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(b"a").is_none(), "oldest entry evicted by budget");
        assert!(cache.get(b"c").is_some());

        // A frame larger than the whole budget is refused outright.
        cache.insert(b"huge".to_vec(), Arc::new(vec![0u8; 11]));
        assert!(cache.get(b"huge").is_none());
        assert!(cache.total_bytes() <= 10);
    }

    #[test]
    fn byte_accounting_survives_reinserts_and_evictions() {
        let mut cache = LruCache::with_byte_budget(4, 1000);
        for round in 0..50u8 {
            for key in [b"x".to_vec(), b"y".to_vec(), b"z".to_vec()] {
                cache.insert(key, Arc::new(vec![round; (round as usize % 7) + 1]));
            }
        }
        let actual: usize = [&b"x"[..], b"y", b"z"]
            .iter()
            .filter_map(|k| cache.get(k))
            .map(|f| f.len())
            .sum();
        assert_eq!(cache.total_bytes(), actual);
    }

    #[test]
    fn long_access_pattern_respects_capacity() {
        let mut cache = LruCache::new(8);
        for i in 0..1000u32 {
            cache.insert(i.to_be_bytes().to_vec(), frame(i as u8));
            assert!(cache.len() <= 8);
        }
        // The most recent 8 keys survive.
        for i in 992..1000u32 {
            assert!(cache.get(&i.to_be_bytes()).is_some(), "key {i}");
        }
    }
}
