//! Socket-level VAQ1 frame reading and writing.
//!
//! A frame is the on-disk format of `vaq_wire` put on a stream: 4-byte
//! magic, 2-byte version, 4-byte little-endian payload length, payload.
//! The reader enforces a caller-supplied payload limit **before** allocating,
//! so a hostile peer cannot make the service reserve gigabytes with a 10-byte
//! header.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};
use vaq_wire::{WireDecode, WireEncode, WireError, MAGIC, VERSION};

use crate::error::ServiceError;

/// How long a partially received frame may keep trickling in before the
/// reader gives up. Streams with a short poll-style read timeout would
/// otherwise drop any client whose frame spans more than one timeout window
/// — a TCP retransmit or a slow link must not kill the connection
/// mid-frame. The server promotes this into
/// [`crate::ServiceConfig::mid_frame_patience`]; the blocking client reader
/// uses this default.
pub const DEFAULT_MID_FRAME_PATIENCE: Duration = Duration::from_secs(10);

/// Outcome of trying to read one frame from a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Payload(Vec<u8>),
    /// The peer closed the connection cleanly before a new frame started.
    Closed,
    /// A read timeout fired before any byte of a new frame arrived; the
    /// connection is idle but intact (only possible with a read timeout
    /// set on the stream).
    Idle,
}

/// Reads one frame payload, enforcing `max_payload` before allocation.
pub fn read_frame(stream: &mut impl Read, max_payload: usize) -> Result<FrameRead, ServiceError> {
    let mut consumed = 0u64;
    read_frame_counted(stream, max_payload, &mut consumed)
}

/// Like [`read_frame`], but also adds every byte actually consumed off the
/// stream to `consumed` — **including** on error paths (a rejected header, a
/// truncated payload). Metrics that account inbound traffic must use this
/// variant: an oversized or malformed frame still crossed the wire.
pub fn read_frame_counted(
    stream: &mut impl Read,
    max_payload: usize,
    consumed: &mut u64,
) -> Result<FrameRead, ServiceError> {
    read_frame_counted_with_patience(stream, max_payload, consumed, DEFAULT_MID_FRAME_PATIENCE)
}

/// Like [`read_frame_counted`], with an explicit mid-frame patience window.
/// A peer that stops sending inside a frame for longer than `patience`
/// surfaces as a typed [`ServiceError::Stalled`] — distinguishable from a
/// generic I/O failure both locally and in per-error-code counters.
pub fn read_frame_counted_with_patience(
    stream: &mut impl Read,
    max_payload: usize,
    consumed: &mut u64,
    patience: Duration,
) -> Result<FrameRead, ServiceError> {
    let mut header = [0u8; 10];
    let (filled, error) = read_all(stream, &mut header, false, patience);
    *consumed += filled as u64;
    if let Some(e) = error {
        let timed_out = matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut);
        if filled == 0 && timed_out {
            return Ok(FrameRead::Idle);
        }
        if timed_out {
            // Some header bytes arrived and then nothing for a whole
            // patience window: the peer stalled mid-frame.
            return Err(ServiceError::Stalled { patience });
        }
        return Err(ServiceError::Io(e));
    }
    match filled {
        0 => return Ok(FrameRead::Closed),
        n if n < header.len() => return Err(ServiceError::Wire(WireError::Truncated)),
        _ => {}
    }
    // lint:allow(panic-path, constant range below the fixed [u8; 10] header length)
    if header[..4] != MAGIC {
        return Err(ServiceError::Wire(WireError::BadMagic));
    }
    // lint:allow(panic-path, constant indices below the fixed [u8; 10] header length)
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(ServiceError::Wire(WireError::UnsupportedVersion(version)));
    }
    // lint:allow(panic-path, constant indices below the fixed [u8; 10] header length)
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > max_payload {
        return Err(ServiceError::FrameTooLarge {
            declared: len,
            limit: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    // The header already arrived, so the stream is mid-frame: payload bytes
    // get the same patience even before the first one shows up.
    let (filled, error) = read_all(stream, &mut payload, true, patience);
    *consumed += filled as u64;
    if let Some(e) = error {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            return Err(ServiceError::Stalled { patience });
        }
        return Err(ServiceError::Io(e));
    }
    if filled < len {
        return Err(ServiceError::Wire(WireError::Truncated));
    }
    Ok(FrameRead::Payload(payload))
}

/// Reads one framed message and decodes it. An idle timeout surfaces as a
/// `TimedOut` I/O error — callers wanting to poll should use [`read_frame`].
pub fn read_message<T: WireDecode>(
    stream: &mut impl Read,
    max_payload: usize,
) -> Result<Option<T>, ServiceError> {
    match read_frame(stream, max_payload)? {
        FrameRead::Closed => Ok(None),
        FrameRead::Idle => Err(ServiceError::Io(std::io::Error::new(
            ErrorKind::TimedOut,
            "timed out waiting for a response frame",
        ))),
        FrameRead::Payload(payload) => Ok(Some(T::from_wire_bytes(&payload)?)),
    }
}

/// Encodes a message and writes it as one frame; returns the frame length.
pub fn write_message<T: WireEncode>(
    stream: &mut impl Write,
    message: &T,
) -> Result<usize, ServiceError> {
    let frame = message.to_framed_bytes();
    stream.write_all(&frame)?;
    Ok(frame.len())
}

/// Like `read_exact` but reports how many bytes arrived before EOF or an
/// error instead of failing outright, so a clean close between frames (and
/// a timeout on a fully idle connection) is distinguishable from a frame
/// truncated mid-flight.
fn read_all(
    stream: &mut impl Read,
    buf: &mut [u8],
    mid_frame: bool,
    patience: Duration,
) -> (usize, Option<std::io::Error>) {
    let mut filled = 0usize;
    // Patience is measured from the last byte of progress, not the start of
    // the frame, so a large frame trickling in steadily is never dropped —
    // only a stalled one.
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        // lint:allow(panic-path, loop guard keeps filled <= buf.len() so the range start is in bounds)
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // A poll-style timeout mid-frame is not an error: the frame has
            // started arriving, so keep waiting (bounded) for the rest.
            Err(e)
                if (mid_frame || filled > 0)
                    && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && last_progress.elapsed() < patience =>
            {
                continue
            }
            Err(e) => return (filled, Some(e)),
        }
    }
    (filled, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use vaq_wire::Request;

    #[test]
    fn frame_roundtrips_through_a_stream() {
        let request = Request::Ping;
        let mut buffer = Vec::new();
        let written = write_message(&mut buffer, &request).unwrap();
        assert_eq!(written, buffer.len());
        let mut cursor = Cursor::new(buffer);
        let decoded: Request = read_message(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(decoded, request);
        // The stream is now empty: the next read reports a clean close.
        assert!(matches!(
            read_frame(&mut cursor, 1024).unwrap(),
            FrameRead::Closed
        ));
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(frame), 4096).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::FrameTooLarge { limit: 4096, .. }
        ));
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let mut frame = Request::Ping.to_framed_bytes();
        frame[0] = b'X';
        let err = read_frame(&mut Cursor::new(&frame), 1024).unwrap_err();
        assert!(matches!(err, ServiceError::Wire(WireError::BadMagic)));

        let frame = Request::Ping.to_framed_bytes();
        for cut in 1..frame.len() {
            let err = read_frame(&mut Cursor::new(&frame[..cut]), 1024).unwrap_err();
            assert!(
                matches!(err, ServiceError::Wire(WireError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    /// A stream yielding one byte per read with a poll timeout in between,
    /// like a slow link under the server's 100ms poll read-timeout.
    struct Trickle {
        bytes: Vec<u8>,
        position: usize,
        parched: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.position >= self.bytes.len() {
                return Ok(0);
            }
            self.parched = !self.parched;
            if self.parched {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "poll timeout"));
            }
            buf[0] = self.bytes[self.position];
            self.position += 1;
            Ok(1)
        }
    }

    #[test]
    fn frames_survive_poll_timeouts_mid_frame() {
        let request = Request::Ping;
        // `parched: true` so the first read yields a byte and every
        // subsequent read alternates timeout/byte — the timeout-before-
        // any-byte case is the separate Idle test below.
        let mut stream = Trickle {
            bytes: request.to_framed_bytes(),
            position: 0,
            parched: true,
        };
        let decoded: Request = read_message(&mut stream, 1024).unwrap().unwrap();
        assert_eq!(decoded, request);
    }

    /// A stream that delivers a prefix of a frame and then times out on
    /// every further read, like a slow-loris peer.
    struct StallAfter {
        bytes: Vec<u8>,
        position: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.position < self.bytes.len() {
                buf[0] = self.bytes[self.position];
                self.position += 1;
                return Ok(1);
            }
            Err(std::io::Error::new(ErrorKind::WouldBlock, "poll timeout"))
        }
    }

    #[test]
    fn mid_frame_stalls_surface_as_typed_errors() {
        let patience = Duration::from_millis(20);
        // Stall inside the header: three magic bytes, then silence.
        let mut stream = StallAfter {
            bytes: MAGIC[..3].to_vec(),
            position: 0,
        };
        let mut consumed = 0u64;
        let err = read_frame_counted_with_patience(&mut stream, 1024, &mut consumed, patience)
            .unwrap_err();
        assert!(matches!(err, ServiceError::Stalled { .. }), "got {err:?}");
        assert_eq!(consumed, 3, "stalled header bytes still count inbound");

        // Stall inside the payload: the full header arrives, no payload.
        let frame = Request::Ping.to_framed_bytes();
        let mut stream = StallAfter {
            bytes: frame[..10].to_vec(),
            position: 0,
        };
        let mut consumed = 0u64;
        let err = read_frame_counted_with_patience(&mut stream, 1024, &mut consumed, patience)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Stalled { patience: p } if p == patience
        ));
        assert_eq!(consumed, 10);
    }

    #[test]
    fn timeout_before_any_byte_reports_idle() {
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "poll timeout"))
            }
        }
        assert!(matches!(
            read_frame(&mut AlwaysTimeout, 1024).unwrap(),
            FrameRead::Idle
        ));
    }

    #[test]
    fn consumed_bytes_counted_on_success_and_error_paths() {
        // Success: header + payload.
        let frame = Request::Ping.to_framed_bytes();
        let mut consumed = 0u64;
        let read = read_frame_counted(&mut Cursor::new(&frame), 1024, &mut consumed).unwrap();
        assert!(matches!(read, FrameRead::Payload(_)));
        assert_eq!(consumed, frame.len() as u64);

        // Oversized frame: the 10 header bytes were still consumed.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&MAGIC);
        oversized.extend_from_slice(&VERSION.to_le_bytes());
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut consumed = 0u64;
        let err = read_frame_counted(&mut Cursor::new(&oversized), 16, &mut consumed).unwrap_err();
        assert!(matches!(err, ServiceError::FrameTooLarge { .. }));
        assert_eq!(consumed, 10);

        // Bad magic: the header was consumed before rejection.
        let mut bad = frame.clone();
        bad[0] = b'X';
        let mut consumed = 0u64;
        let err = read_frame_counted(&mut Cursor::new(&bad), 1024, &mut consumed).unwrap_err();
        assert!(matches!(err, ServiceError::Wire(WireError::BadMagic)));
        assert!(consumed >= 10);

        // Truncated mid-payload: every byte that did arrive is counted.
        let request = Request::Query(vaq_authquery::Query::top_k(vec![0.25, 0.75], 3));
        let frame = request.to_framed_bytes();
        let cut = frame.len() - 2;
        let mut consumed = 0u64;
        let err =
            read_frame_counted(&mut Cursor::new(&frame[..cut]), 1024, &mut consumed).unwrap_err();
        assert!(matches!(err, ServiceError::Wire(WireError::Truncated)));
        assert_eq!(consumed, cut as u64);

        // Idle: nothing arrived, nothing is counted.
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "poll timeout"))
            }
        }
        let mut consumed = 0u64;
        assert!(matches!(
            read_frame_counted(&mut AlwaysTimeout, 1024, &mut consumed).unwrap(),
            FrameRead::Idle
        ));
        assert_eq!(consumed, 0);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = Request::Ping.to_framed_bytes();
        frame[4] = 9;
        let err = read_frame(&mut Cursor::new(frame), 1024).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Wire(WireError::UnsupportedVersion(9))
        ));
    }
}
