//! Lock-free service metrics: counters plus fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vaq_wire::{KindLatency, LatencyHistogram, StatsSnapshot, LATENCY_BUCKET_BOUNDS_MICROS};

/// Number of histogram buckets: one per bound plus an overflow bucket.
pub const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_MICROS.len() + 1;

/// A fixed-bucket latency histogram updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BUCKET_BOUNDS_MICROS
            .iter()
            .position(|bound| micros <= *bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the histogram as a wire message.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            bucket_counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Request kinds the service tracks latency for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Top-k query.
    TopK,
    /// Range query.
    Range,
    /// KNN query.
    Knn,
    /// Batch of queries.
    Batch,
}

impl RequestKind {
    const ALL: [RequestKind; 4] = [
        RequestKind::TopK,
        RequestKind::Range,
        RequestKind::Knn,
        RequestKind::Batch,
    ];

    fn index(self) -> usize {
        match self {
            RequestKind::TopK => 0,
            RequestKind::Range => 1,
            RequestKind::Knn => 2,
            RequestKind::Batch => 3,
        }
    }

    fn label(self) -> &'static str {
        match self {
            RequestKind::TopK => "topk",
            RequestKind::Range => "range",
            RequestKind::Knn => "knn",
            RequestKind::Batch => "batch",
        }
    }
}

/// All counters of one running service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully served (including error replies).
    pub requests_served: AtomicU64,
    /// Query responses served from the cache.
    pub cache_hits: AtomicU64,
    /// Query responses that were computed.
    pub cache_misses: AtomicU64,
    /// Request-frame bytes read.
    pub bytes_in: AtomicU64,
    /// Response-frame bytes written.
    pub bytes_out: AtomicU64,
    /// Error replies sent.
    pub errors: AtomicU64,
    latency: [Histogram; 4],
}

impl Metrics {
    /// Records one served query/batch latency under its kind.
    pub fn observe_latency(&self, kind: RequestKind, latency: Duration) {
        self.latency[kind.index()].observe(latency);
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter as a wire message, stamped with the
    /// publication epoch the service currently serves.
    pub fn snapshot(&self, workers: usize, epoch: u64) -> StatsSnapshot {
        StatsSnapshot {
            requests_served: Self::get(&self.requests_served),
            cache_hits: Self::get(&self.cache_hits),
            cache_misses: Self::get(&self.cache_misses),
            bytes_in: Self::get(&self.bytes_in),
            bytes_out: Self::get(&self.bytes_out),
            errors: Self::get(&self.errors),
            workers: workers as u32,
            epoch,
            per_kind: RequestKind::ALL
                .iter()
                .map(|kind| KindLatency {
                    kind: kind.label().to_string(),
                    histogram: self.latency[kind.index()].snapshot(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(40)); // <= 50: bucket 0
        h.observe(Duration::from_micros(50)); // <= 50: bucket 0
        h.observe(Duration::from_micros(51)); // <= 100: bucket 1
        h.observe(Duration::from_secs(10)); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.bucket_counts[0], 2);
        assert_eq!(snap.bucket_counts[1], 1);
        assert_eq!(snap.bucket_counts[BUCKETS - 1], 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_micros, 10_000_000);
        assert_eq!(snap.bucket_counts.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn metrics_snapshot_carries_all_kinds() {
        let m = Metrics::default();
        m.observe_latency(RequestKind::TopK, Duration::from_micros(10));
        m.observe_latency(RequestKind::Batch, Duration::from_micros(20));
        Metrics::add(&m.requests_served, 2);
        let snap = m.snapshot(8, 5);
        assert_eq!(snap.workers, 8);
        assert_eq!(snap.epoch, 5);
        assert_eq!(snap.requests_served, 2);
        assert_eq!(snap.per_kind.len(), 4);
        let labels: Vec<&str> = snap.per_kind.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(labels, ["topk", "range", "knn", "batch"]);
        assert_eq!(snap.per_kind[0].histogram.count, 1);
        assert_eq!(snap.per_kind[3].histogram.count, 1);
    }
}
