//! Lock-free service metrics: counters, fixed-bucket latency histograms,
//! and per-stage attribution of the server hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vaq_wire::{
    ErrorCode, ErrorCount, KindLatency, KindStages, LatencyHistogram, ReactorStats, StageLatency,
    StageMicros, StatsDeep, StatsSnapshot, LATENCY_BUCKET_BOUNDS_MICROS,
};

/// Number of histogram buckets: one per bound plus an overflow bucket.
pub const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_MICROS.len() + 1;

/// Number of hot-path stages a request is attributed to.
pub const STAGES: usize = 8;

/// One stage of the server hot path, in request order. Every request's
/// wall-clock time decomposes into disjoint spans of these stages (plus
/// untimed glue), so per-stage sums never exceed whole-request time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Accepted connection waiting in the worker queue (first request of a
    /// connection only; subsequent requests see zero).
    QueueWait,
    /// Decoding the request payload into a [`vaq_wire::Request`].
    Decode,
    /// Response-cache probe(s), including lock acquisition.
    CacheLookup,
    /// Waiting for an identical in-flight request to publish its response
    /// (single-flight followers; leaders see ~zero).
    FlightWait,
    /// Query execution: subdomain location, scoring, window selection.
    Execute,
    /// Verification-object construction and signature binding.
    VoBuild,
    /// Encoding the response into a framed byte vector.
    Encode,
    /// Writing the response frame to the socket.
    Write,
}

impl Stage {
    /// Every stage, in hot-path order.
    pub const ALL: [Stage; STAGES] = [
        Stage::QueueWait,
        Stage::Decode,
        Stage::CacheLookup,
        Stage::FlightWait,
        Stage::Execute,
        Stage::VoBuild,
        Stage::Encode,
        Stage::Write,
    ];

    /// Stable position of this stage in [`Stage::ALL`].
    pub fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Decode => 1,
            Stage::CacheLookup => 2,
            Stage::FlightWait => 3,
            Stage::Execute => 4,
            Stage::VoBuild => 5,
            Stage::Encode => 6,
            Stage::Write => 7,
        }
    }

    /// Stable snake_case label used in stats payloads and slow-request log
    /// lines.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Decode => "decode",
            Stage::CacheLookup => "cache_lookup",
            Stage::FlightWait => "flight_wait",
            Stage::Execute => "execute",
            Stage::VoBuild => "vo_build",
            Stage::Encode => "encode",
            Stage::Write => "write",
        }
    }
}

/// A fixed-bucket latency histogram updated with relaxed atomics.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Histogram {
    /// Records one latency observation.
    pub fn observe(&self, latency: Duration) {
        self.observe_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one latency observation already truncated to microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let bucket = LATENCY_BUCKET_BOUNDS_MICROS
            .iter()
            .position(|bound| micros <= *bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the histogram as a wire message.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            bucket_counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Count/sum/max accumulator for one (request kind, stage) cell — cheaper
/// than a full histogram, and sums are what the bounds invariant needs.
#[derive(Debug, Default)]
struct StageAccum {
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl StageAccum {
    fn record(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn snapshot(&self, stage: Stage) -> StageMicros {
        StageMicros {
            stage: stage.label().to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Request kinds the service tracks latency for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Top-k query.
    TopK,
    /// Range query.
    Range,
    /// KNN query.
    Knn,
    /// Batch of queries.
    Batch,
}

impl RequestKind {
    /// Every kind, in label order.
    pub const ALL: [RequestKind; 4] = [
        RequestKind::TopK,
        RequestKind::Range,
        RequestKind::Knn,
        RequestKind::Batch,
    ];

    /// Stable position of this kind in [`RequestKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            RequestKind::TopK => 0,
            RequestKind::Range => 1,
            RequestKind::Knn => 2,
            RequestKind::Batch => 3,
        }
    }

    /// Stable label used in stats payloads (`"topk"`, `"range"`, `"knn"`,
    /// `"batch"`).
    pub fn label(self) -> &'static str {
        match self {
            RequestKind::TopK => "topk",
            RequestKind::Range => "range",
            RequestKind::Knn => "knn",
            RequestKind::Batch => "batch",
        }
    }
}

/// Point-in-time response-cache occupancy, sampled by whoever holds the
/// cache lock and handed to [`Metrics::snapshot`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheGauges {
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// Entries evicted since the cache was created.
    pub evictions: u64,
}

/// All counters of one running service.
#[derive(Debug)]
pub struct Metrics {
    /// Requests fully served (including error replies).
    pub requests_served: AtomicU64,
    /// Query responses served from the cache.
    pub cache_hits: AtomicU64,
    /// Query responses that were computed.
    pub cache_misses: AtomicU64,
    /// Request-frame bytes read.
    pub bytes_in: AtomicU64,
    /// Response-frame bytes written.
    pub bytes_out: AtomicU64,
    /// Error replies sent.
    pub errors: AtomicU64,
    /// Connections shed at the configured connection limit (each also
    /// records a typed [`ErrorCode::Overloaded`] reply in the per-code
    /// breakdown).
    pub connections_shed: AtomicU64,
    /// Connections shed because their queued response bytes exceeded the
    /// per-connection write-queue budget (slow readers); each also records
    /// a typed [`ErrorCode::Overloaded`] reply in the per-code breakdown.
    pub slow_readers_shed: AtomicU64,
    /// Reactor sweeps that ran past the configured stall threshold.
    pub reactor_stalls: AtomicU64,
    per_error: [AtomicU64; ErrorCode::ALL.len()],
    latency: [Histogram; 4],
    stage_latency: [Histogram; STAGES],
    kind_stage: [[StageAccum; STAGES]; 4],
    sweep_latency: Histogram,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests_served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            slow_readers_shed: AtomicU64::new(0),
            reactor_stalls: AtomicU64::new(0),
            per_error: Default::default(),
            latency: Default::default(),
            stage_latency: Default::default(),
            kind_stage: Default::default(),
            sweep_latency: Default::default(),
            started: Instant::now(),
        }
    }
}

impl Metrics {
    /// Records one served query/batch latency under its kind.
    pub fn observe_latency(&self, kind: RequestKind, latency: Duration) {
        self.latency[kind.index()].observe(latency);
    }

    /// Folds one finished request trace into the per-stage histograms, and
    /// — when the request was query-shaped — into its kind's whole-request
    /// histogram and per-kind stage attribution.
    pub fn observe_request(
        &self,
        stage_micros: &[u64; STAGES],
        kind: Option<RequestKind>,
        total: Duration,
    ) {
        for stage in Stage::ALL {
            self.stage_latency[stage.index()].observe_micros(stage_micros[stage.index()]);
        }
        if let Some(kind) = kind {
            self.latency[kind.index()].observe(total);
            for stage in Stage::ALL {
                self.kind_stage[kind.index()][stage.index()].record(stage_micros[stage.index()]);
            }
        }
    }

    /// Records one reactor sweep's duration, counting it as a stall when it
    /// ran for at least `stall_threshold_micros` — the runtime twin of the
    /// static reactor-discipline lint pass: a blocking call that slipped
    /// past the linter surfaces here as a stall tick.
    pub fn observe_sweep(&self, duration: Duration, stall_threshold_micros: u64) {
        let micros = duration.as_micros().min(u64::MAX as u128) as u64;
        self.sweep_latency.observe_micros(micros);
        if micros >= stall_threshold_micros {
            self.reactor_stalls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reactor sweeps observed so far.
    pub fn sweep_count(&self) -> u64 {
        self.sweep_latency.count()
    }

    /// Bumps the flat error counter and the per-code breakdown together.
    pub fn record_error(&self, code: ErrorCode) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.per_error[code.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Error replies sent with one specific code.
    pub fn error_count(&self, code: ErrorCode) -> u64 {
        self.per_error[code.index()].load(Ordering::Relaxed)
    }

    /// Micros since this metrics registry (and hence the service carrying
    /// it) was created.
    pub fn uptime_micros(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter as a wire message, stamped with the
    /// publication epoch the service currently serves and the sampled
    /// response-cache occupancy.
    pub fn snapshot(&self, workers: usize, epoch: u64, cache: CacheGauges) -> StatsSnapshot {
        StatsSnapshot {
            requests_served: Self::get(&self.requests_served),
            cache_hits: Self::get(&self.cache_hits),
            cache_misses: Self::get(&self.cache_misses),
            bytes_in: Self::get(&self.bytes_in),
            bytes_out: Self::get(&self.bytes_out),
            errors: Self::get(&self.errors),
            workers: workers as u32,
            epoch,
            per_kind: RequestKind::ALL
                .iter()
                .map(|kind| KindLatency {
                    kind: kind.label().to_string(),
                    histogram: self.latency[kind.index()].snapshot(),
                })
                .collect(),
            uptime_micros: self.uptime_micros(),
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_evictions: cache.evictions,
            per_error: ErrorCode::ALL
                .iter()
                .map(|code| ErrorCount {
                    code: code.label().to_string(),
                    count: self.per_error[code.index()].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Deep snapshot: the flat snapshot plus per-stage histograms,
    /// per-kind stage attribution, and reactor health telemetry.
    pub fn deep_snapshot(&self, workers: usize, epoch: u64, cache: CacheGauges) -> StatsDeep {
        StatsDeep {
            snapshot: self.snapshot(workers, epoch, cache),
            per_stage: Stage::ALL
                .iter()
                .map(|stage| StageLatency {
                    stage: stage.label().to_string(),
                    histogram: self.stage_latency[stage.index()].snapshot(),
                })
                .collect(),
            per_kind_stage: RequestKind::ALL
                .iter()
                .map(|kind| KindStages {
                    kind: kind.label().to_string(),
                    stages: Stage::ALL
                        .iter()
                        .map(|stage| self.kind_stage[kind.index()][stage.index()].snapshot(*stage))
                        .collect(),
                })
                .collect(),
            reactor: ReactorStats {
                sweeps: self.sweep_latency.snapshot(),
                reactor_stalls: Self::get(&self.reactor_stalls),
                slow_readers_shed: Self::get(&self.slow_readers_shed),
                connections_shed: Self::get(&self.connections_shed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(40)); // <= 50: bucket 0
        h.observe(Duration::from_micros(50)); // <= 50: bucket 0
        h.observe(Duration::from_micros(51)); // <= 100: bucket 1
        h.observe(Duration::from_secs(10)); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.bucket_counts[0], 2);
        assert_eq!(snap.bucket_counts[1], 1);
        assert_eq!(snap.bucket_counts[BUCKETS - 1], 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_micros, 10_000_000);
        assert_eq!(snap.bucket_counts.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn metrics_snapshot_carries_all_kinds() {
        let m = Metrics::default();
        m.observe_latency(RequestKind::TopK, Duration::from_micros(10));
        m.observe_latency(RequestKind::Batch, Duration::from_micros(20));
        Metrics::add(&m.requests_served, 2);
        let snap = m.snapshot(8, 5, CacheGauges::default());
        assert_eq!(snap.workers, 8);
        assert_eq!(snap.epoch, 5);
        assert_eq!(snap.requests_served, 2);
        assert_eq!(snap.per_kind.len(), 4);
        let labels: Vec<&str> = snap.per_kind.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(labels, ["topk", "range", "knn", "batch"]);
        assert_eq!(snap.per_kind[0].histogram.count, 1);
        assert_eq!(snap.per_kind[3].histogram.count, 1);
    }

    #[test]
    fn per_error_counters_break_out_the_flat_counter() {
        let m = Metrics::default();
        m.record_error(ErrorCode::BadQuery);
        m.record_error(ErrorCode::BadQuery);
        m.record_error(ErrorCode::StaleEpoch);
        assert_eq!(Metrics::get(&m.errors), 3);
        assert_eq!(m.error_count(ErrorCode::BadQuery), 2);
        assert_eq!(m.error_count(ErrorCode::StaleEpoch), 1);
        assert_eq!(m.error_count(ErrorCode::Internal), 0);
        let snap = m.snapshot(1, 1, CacheGauges::default());
        let total: u64 = snap.per_error.iter().map(|e| e.count).sum();
        assert_eq!(total, snap.errors);
        let bad = snap
            .per_error
            .iter()
            .find(|e| e.code == "bad_query")
            .unwrap();
        assert_eq!(bad.count, 2);
    }

    #[test]
    fn observe_request_attributes_stages_to_kinds() {
        let m = Metrics::default();
        let mut micros = [0u64; STAGES];
        micros[Stage::Execute.index()] = 300;
        micros[Stage::VoBuild.index()] = 200;
        micros[Stage::Write.index()] = 10;
        m.observe_request(
            &micros,
            Some(RequestKind::Range),
            Duration::from_micros(600),
        );
        // A kind-less request (e.g. a stats scrape) still feeds the global
        // per-stage histograms.
        m.observe_request(&[0u64; STAGES], None, Duration::from_micros(5));

        let deep = m.deep_snapshot(2, 7, CacheGauges::default());
        assert_eq!(deep.per_stage.len(), STAGES);
        for stage in &deep.per_stage {
            assert_eq!(stage.histogram.count, 2, "stage {}", stage.stage);
        }
        let range = deep
            .per_kind_stage
            .iter()
            .find(|k| k.kind == "range")
            .unwrap();
        let stage_sum: u64 = range.stages.iter().map(|s| s.sum_micros).sum();
        assert_eq!(stage_sum, 510);
        let whole = &deep.snapshot.per_kind[RequestKind::Range.index()].histogram;
        assert_eq!(whole.count, 1);
        assert!(stage_sum <= whole.sum_micros);
    }

    #[test]
    fn sweep_watchdog_counts_stalls_above_the_threshold() {
        let m = Metrics::default();
        m.observe_sweep(Duration::from_micros(40), 1000);
        m.observe_sweep(Duration::from_micros(1000), 1000); // at threshold: stall
        m.observe_sweep(Duration::from_micros(2500), 1000);
        assert_eq!(m.sweep_count(), 3);
        assert_eq!(Metrics::get(&m.reactor_stalls), 2);
        let deep = m.deep_snapshot(1, 0, CacheGauges::default());
        assert_eq!(deep.reactor.sweeps.count, 3);
        assert_eq!(deep.reactor.sweeps.max_micros, 2500);
        assert_eq!(deep.reactor.reactor_stalls, 2);
        assert_eq!(deep.reactor.slow_readers_shed, 0);
    }

    #[test]
    fn uptime_is_monotone() {
        let m = Metrics::default();
        let a = m.uptime_micros();
        let b = m.uptime_micros();
        assert!(b >= a);
    }
}
