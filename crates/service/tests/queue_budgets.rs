//! Keeps the static and runtime halves of the queue-budget scheme in sync:
//! `crates/lint/queue_budgets.toml` (read by the vaq-lint bounded-queue
//! pass) must name only queue fields that actually exist in
//! crates/service/src, and only budget identifiers that are real config
//! fields, constants or guard flags — otherwise the pass silently checks
//! nothing while claiming the queues are bounded.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn manifest_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../lint/queue_budgets.toml")
}

fn manifest() -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(manifest_path()).expect("queue_budgets.toml is checked in");
    let mut budgets = BTreeMap::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (field, budget) = line
            .split_once('=')
            .expect("manifest lines are `queue_field = budget_ident`");
        assert!(
            budgets
                .insert(field.trim().to_string(), budget.trim().to_string())
                .is_none(),
            "duplicate manifest entry for '{}'",
            field.trim()
        );
    }
    budgets
}

/// Concatenated vaq-service sources.
fn service_sources() -> String {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut combined = String::new();
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("src dir reads") {
            let path = entry.expect("dir entry reads").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                combined.push_str(&std::fs::read_to_string(&path).expect("source file reads"));
            }
        }
    }
    combined
}

/// Whether `name` appears in `source` as a whole identifier (not as a
/// substring of a longer one).
fn declares(source: &str, name: &str) -> bool {
    source.match_indices(name).any(|(at, _)| {
        let is_ident = |c: char| c.is_alphanumeric() || c == '_';
        let before_ok = !source[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !source[at + name.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        before_ok && after_ok
    })
}

#[test]
fn manifest_is_checked_in_and_names_the_reactor_queues() {
    let budgets = manifest();
    assert!(!budgets.is_empty(), "queue_budgets.toml must not be empty");
    // The queues the slow-reader defence and dispatch backpressure depend
    // on must stay declared; removing one silently unchecks its pushes.
    for field in [
        "write_queue",
        "pending_tagged",
        "pending_untagged",
        "dispatch_backlog",
    ] {
        assert!(
            budgets.contains_key(field),
            "queue_budgets.toml lost its `{field}` entry"
        );
    }
    assert_eq!(
        budgets.get("write_queue").map(String::as_str),
        Some("write_queue_budget_bytes"),
        "the write queue is budgeted by the ServiceConfig byte budget"
    );
}

#[test]
fn every_manifest_queue_field_exists_in_service_src() {
    let sources = service_sources();
    for (field, _) in manifest() {
        // A queue field is declared somewhere as `name:` (struct field) —
        // `write_queue: VecDeque<Outgoing>` and friends.
        assert!(
            declares(&sources, &field) && sources.contains(&format!("{field}:")),
            "queue field `{field}` from queue_budgets.toml is not declared in \
             crates/service/src; fix the manifest after a rename"
        );
    }
}

#[test]
fn every_manifest_budget_is_a_real_identifier_in_service_src() {
    let sources = service_sources();
    let config =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("src/config.rs"))
            .expect("config.rs reads");
    for (field, budget) in manifest() {
        assert!(
            declares(&sources, &budget),
            "budget `{budget}` for queue `{field}` does not exist in crates/service/src"
        );
        // A lower-case budget is either a ServiceConfig field or a guard
        // flag / field; an UPPER_CASE one must be a declared constant.
        if budget.chars().all(|c| c.is_uppercase() || c == '_') {
            assert!(
                sources.contains(&format!("const {budget}:")),
                "budget `{budget}` looks like a constant but `const {budget}:` is not \
                 declared in crates/service/src"
            );
        } else if budget.ends_with("_bytes") || budget == "workers" {
            assert!(
                config.contains(&format!("pub {budget}:")),
                "budget `{budget}` must be a public ServiceConfig field"
            );
        }
    }
}
