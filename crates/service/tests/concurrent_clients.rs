//! Localhost integration tests: a real `QueryService` on an ephemeral port,
//! driven by concurrent clients over TCP, with every response verified
//! cryptographically — the paper's three-party protocol across an actual
//! network boundary.

use std::sync::Arc;
use std::time::Duration;

use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{PublicKey, SignatureScheme, Signer};
use vaq_funcdb::Dataset;
use vaq_service::{
    spec_to_query, LoadGenerator, QueryService, ServiceClient, ServiceConfig, ServiceError,
};
use vaq_wire::{ErrorCode, Request, Response, WireEncode};
use vaq_workload::{uniform_dataset, QueryGenerator, QueryMix};

/// Owner-side setup: dataset, signed tree, scheme.
fn owner_setup(n: usize, dims: usize, seed: u64) -> (Dataset, Server, SignatureScheme) {
    let dataset = uniform_dataset(n, dims, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    (dataset, server, scheme)
}

/// Drain-time counters (`requests_served`, per-kind histograms) commit when
/// the reactor finishes writing each reply frame — an instant *after* the
/// client's read returns. Same-connection wire scrapes are ordered behind
/// that drain, but in-process `service.stats()` readers race it, so they
/// poll until the expected request count lands.
fn stats_once_served(service: &QueryService, served: u64) -> vaq_wire::StatsSnapshot {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = service.stats();
        if stats.requests_served >= served || std::time::Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn concurrent_clients_complete_a_mixed_verified_workload() {
    let (dataset, server, scheme) = owner_setup(14, 1, 2024);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(4), server).unwrap();
    let addr = service.local_addr();
    let template = Arc::new(dataset.template.clone());
    let public_key: Arc<PublicKey> = Arc::new(scheme.public_key());

    const CLIENTS: usize = 5;
    const QUERIES_PER_CLIENT: usize = 9;

    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let dataset = dataset.clone();
            let template = Arc::clone(&template);
            let public_key = Arc::clone(&public_key);
            std::thread::spawn(move || {
                let mut generator = QueryGenerator::new(&dataset, 100 + i as u64);
                let mut client = ServiceClient::connect(addr).expect("connect");
                let mut verified = 0usize;
                // A mixed batch covers top-k, range and KNN kinds.
                for spec in generator.mixed_batch(QUERIES_PER_CLIENT, 3) {
                    let query = spec_to_query(&spec);
                    let (_, outcome) = client
                        .query_verified(&query, &template, public_key.as_ref())
                        .unwrap_or_else(|e| panic!("client {i}, query {query}: {e}"));
                    assert!(!outcome.scores.is_empty() || matches!(query, Query::Range { .. }));
                    verified += 1;
                }
                verified
            })
        })
        .collect();

    let total_verified: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(total_verified, CLIENTS * QUERIES_PER_CLIENT);

    let stats = stats_once_served(&service, (CLIENTS * QUERIES_PER_CLIENT) as u64);
    assert!(
        stats.requests_served >= (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "served {} of {}",
        stats.requests_served,
        CLIENTS * QUERIES_PER_CLIENT
    );
    assert_eq!(stats.errors, 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    // Every query kind saw traffic and the histograms account for it.
    for kind in ["topk", "range", "knn"] {
        let histogram = &stats
            .per_kind
            .iter()
            .find(|k| k.kind == kind)
            .unwrap_or_else(|| panic!("missing kind {kind}"))
            .histogram;
        assert!(histogram.count > 0, "no {kind} latency observations");
        assert_eq!(
            histogram.bucket_counts.iter().sum::<u64>(),
            histogram.count,
            "{kind} bucket counts must sum to the observation count"
        );
    }
    service.shutdown();
}

#[test]
fn repeated_queries_hit_the_response_cache() {
    let (dataset, server, scheme) = owner_setup(12, 1, 7);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(2), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    let verifier = scheme.verifier();
    let query = Query::top_k(vec![0.4], 4);

    let first = client.query(&query).unwrap();
    let second = client.query(&query).unwrap();
    // The cached response is byte-identical, so it decodes equal and still
    // verifies.
    assert_eq!(first.records, second.records);
    assert_eq!(first.vo, second.vo);
    client::verify(
        &query,
        &second.records,
        &second.vo,
        &dataset.template,
        verifier.as_ref(),
    )
    .expect("cached response must verify");

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);

    // A structurally different query misses.
    client.query(&Query::top_k(vec![0.4], 5)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    service.shutdown();
}

#[test]
fn graceful_shutdown_stops_the_listener_and_reports_final_stats() {
    let (_, server, _) = owner_setup(10, 1, 11);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(3), server).unwrap();
    let addr = service.local_addr();

    let mut client = ServiceClient::connect(addr).unwrap();
    client.ping().unwrap();

    let stats = service.shutdown();
    assert!(stats.requests_served >= 1);

    // The listener is gone: new connections are refused (or, at worst, any
    // raced connection is closed without service).
    match ServiceClient::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut raced) => {
            raced
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            assert!(raced.ping().is_err(), "no requests served after shutdown");
        }
    }
}

#[test]
fn batches_round_trip_and_verify() {
    let (dataset, server, scheme) = owner_setup(13, 1, 21);
    let service = QueryService::bind(ServiceConfig::ephemeral(), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    let verifier = scheme.verifier();

    let queries = vec![
        Query::top_k(vec![0.7], 3),
        Query::range(vec![0.3], 0.1, 0.8),
        Query::knn(vec![0.5], 2, 0.4),
    ];
    let responses = client.batch(&queries).unwrap();
    assert_eq!(responses.len(), queries.len());
    for (query, response) in queries.iter().zip(&responses) {
        client::verify(
            query,
            &response.records,
            &response.vo,
            &dataset.template,
            verifier.as_ref(),
        )
        .unwrap_or_else(|e| panic!("batch item {query}: {e:?}"));
    }

    // Batch items populate the same per-item cache entries singles use: a
    // single query for a batch member is a hit, and re-sending the whole
    // batch recomputes nothing.
    let before = client.stats().unwrap();
    assert_eq!(before.cache_misses, queries.len() as u64);
    let single = client.query(&queries[0]).unwrap();
    assert_eq!(single.records, responses[0].records);
    client.batch(&queries).unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.cache_misses, before.cache_misses, "no recomputation");
    assert_eq!(
        after.cache_hits,
        before.cache_hits + 1 + queries.len() as u64
    );

    // An epoch-pinned batch at the serving epoch answers identically; a
    // stale pin is refused typed.
    let pinned = client.batch_at(service.epoch(), &queries).unwrap();
    assert_eq!(pinned.len(), queries.len());
    assert_eq!(pinned[0].records, responses[0].records);
    let err = client
        .batch_at(service.epoch() + 1, &queries)
        .expect_err("wrong pin");
    assert!(err.is_stale_epoch(), "expected stale-epoch, got {err}");
    service.shutdown();
}

#[test]
fn empty_batches_are_rejected_with_a_typed_bad_query() {
    // Regression: an empty batch sailed under the max-batch-length check,
    // computed nothing, and still cached a useless empty response. Both the
    // plain and the epoch-pinned path must reject it typed instead.
    let (_, server, _) = owner_setup(10, 1, 22);
    let service = QueryService::bind(ServiceConfig::ephemeral(), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    for err in [
        client.batch(&[]).expect_err("empty batch"),
        client
            .batch_at(service.epoch(), &[])
            .expect_err("empty pinned batch"),
    ] {
        match err {
            ServiceError::Remote(reply) => {
                assert_eq!(reply.code, ErrorCode::BadQuery);
                assert!(reply.message.contains("no queries"), "{}", reply.message);
            }
            other => panic!("expected a remote BadQuery, got {other}"),
        }
    }

    // The connection survives the typed errors, and nothing was cached or
    // counted as computed.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 2);
    assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    service.shutdown();
}

#[test]
fn mismatched_batch_arity_is_a_typed_protocol_violation() {
    use std::net::TcpListener;
    // Regression: a malicious (or buggy) server answering a 2-query batch
    // with 1 response used to be silently zip-truncated by callers. The
    // client must reject the frame with a typed arity error — and, since
    // exactly one frame answered the batch, stay usable afterwards.
    let (_, server, _) = owner_setup(10, 1, 23);
    let genuine = std::sync::Arc::new(server);

    // A hand-rolled server that strips the last response from every batch.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let truncating = {
        let genuine = std::sync::Arc::clone(&genuine);
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            loop {
                let request: Request = match vaq_service::frame::read_message(&mut stream, 1 << 20)
                {
                    Ok(Some(request)) => request,
                    _ => return,
                };
                let reply = match request {
                    Request::Batch(queries) => {
                        let mut responses: Vec<_> =
                            queries.iter().map(|q| genuine.process(q)).collect();
                        responses.pop();
                        Response::Batch {
                            epoch: 0,
                            responses,
                        }
                    }
                    Request::Ping => Response::Pong,
                    _ => return,
                };
                if vaq_service::frame::write_message(&mut stream, &reply).is_err() {
                    return;
                }
            }
        })
    };

    let mut client = ServiceClient::connect(addr).unwrap();
    let queries = vec![Query::top_k(vec![0.7], 3), Query::top_k(vec![0.2], 2)];
    match client.batch(&queries).expect_err("truncated batch") {
        ServiceError::BatchArity { expected, got } => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("expected BatchArity, got {other}"),
    }
    // One request, one frame: the connection is still aligned and usable.
    client.ping().unwrap();
    drop(client);
    truncating.join().unwrap();
}

#[test]
fn wrong_dimensionality_gets_a_typed_bad_query_reply() {
    let (_, server, _) = owner_setup(10, 2, 31);
    let service = QueryService::bind(ServiceConfig::ephemeral(), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    let err = client.query(&Query::top_k(vec![0.5], 2)).unwrap_err();
    match err {
        ServiceError::Remote(reply) => {
            assert_eq!(reply.code, ErrorCode::BadQuery);
            assert!(reply.message.contains("dims"), "{}", reply.message);
        }
        other => panic!("expected a remote BadQuery, got {other}"),
    }
    // The connection survives a typed error.
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 1);
    service.shutdown();
}

#[test]
fn oversized_and_garbage_frames_are_rejected() {
    use std::io::Write;
    let (_, server, _) = owner_setup(10, 1, 41);
    let config = ServiceConfig::ephemeral().max_frame_bytes(1024);
    let service = QueryService::bind(config, server).unwrap();
    let addr = service.local_addr();

    // Oversized: an honest header declaring a payload above the limit.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&vaq_wire::MAGIC);
    header.extend_from_slice(&vaq_wire::VERSION.to_le_bytes());
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());
    stream.write_all(&header).unwrap();
    let reply: Response = vaq_service::frame::read_message(&mut stream, 1 << 20)
        .unwrap()
        .unwrap();
    match reply {
        Response::Error(reply) => assert_eq!(reply.code, ErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // Garbage: not even a VAQ1 frame.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let reply: Result<Option<Response>, _> = vaq_service::frame::read_message(&mut stream, 1 << 20);
    match reply {
        Ok(Some(Response::Error(reply))) => assert_eq!(reply.code, ErrorCode::Malformed),
        Ok(Some(other)) => panic!("expected Malformed, got {other:?}"),
        // The service may also just drop the connection.
        Ok(None) | Err(_) => {}
    }

    // A well-formed frame with a bogus request tag gets a Malformed reply
    // and keeps the connection.
    let mut client = ServiceClient::connect(addr).unwrap();
    let bogus = RawBytes(vec![0xEE]);
    let err = client.call(&Request::Ping).and_then(|_| {
        // Send the bogus payload through a raw frame on a fresh socket.
        let mut stream = std::net::TcpStream::connect(addr)?;
        stream.write_all(&bogus.to_framed_bytes())?;
        let reply: Response =
            vaq_service::frame::read_message(&mut stream, 1 << 20)?.expect("reply expected");
        match reply {
            Response::Error(reply) => {
                assert_eq!(reply.code, ErrorCode::Malformed);
                Ok(Response::Pong)
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    });
    err.unwrap();
    service.shutdown();
}

/// Helper to frame arbitrary payload bytes.
struct RawBytes(Vec<u8>);

impl WireEncode for RawBytes {
    fn encode(&self, w: &mut vaq_wire::Writer) {
        for byte in &self.0 {
            w.put_u8(*byte);
        }
    }
}

#[test]
fn shutdown_completes_when_bound_to_a_wildcard_address() {
    // Regression: the shutdown wakeup used to connect to the *bound*
    // address; for 0.0.0.0 that target is the unspecified address, which is
    // platform-dependent and can fail — leaving accept() blocked and join()
    // deadlocked. The wakeup must target loopback with the bound port.
    let (_, server, _) = owner_setup(10, 1, 61);
    let config = ServiceConfig::ephemeral().bind("0.0.0.0:0".parse().unwrap());
    let service = QueryService::bind(config, server).unwrap();
    let port = service.local_addr().port();

    // The wildcard-bound service is reachable via loopback.
    let mut client =
        ServiceClient::connect(std::net::SocketAddr::from(([127, 0, 0, 1], port))).unwrap();
    client.ping().unwrap();

    // Run the shutdown on a watchdog: the regression deadlocked here.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let stats = service.shutdown();
        done_tx.send(stats).unwrap();
    });
    let stats = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown of a 0.0.0.0-bound service must complete");
    assert!(stats.requests_served >= 1);
}

#[test]
fn concurrent_identical_queries_compute_once() {
    // Regression: N workers missing the cache on the same canonical key all
    // ran Server::process redundantly (cache stampede). Single-flight
    // deduplication must leave exactly one miss however the clients race.
    const CLIENTS: usize = 6;
    let (_, server, _) = owner_setup(30, 1, 71);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(CLIENTS), server).unwrap();
    let addr = service.local_addr();
    // A wide range query keeps the computation (and response encoding)
    // slow enough that the clients genuinely overlap.
    let query = Query::range(vec![0.5], -1.0, 2.0);

    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let query = query.clone();
            let barrier = Arc::clone(&barrier);
            let mut client = ServiceClient::connect(addr).expect("connect");
            std::thread::spawn(move || {
                barrier.wait();
                client.query(&query).expect("query").records.len()
            })
        })
        .collect();
    let result_sizes: Vec<usize> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(result_sizes.windows(2).all(|w| w[0] == w[1]));

    let stats = service.shutdown();
    assert_eq!(
        stats.cache_misses, 1,
        "identical concurrent queries must compute exactly once"
    );
    assert_eq!(stats.cache_hits, (CLIENTS - 1) as u64);
}

#[test]
fn concurrent_batches_and_singles_compute_each_distinct_item_once() {
    // Regression: the batch path used to cache on the whole batch payload,
    // so a batch never shared work with singles (or with batches differing
    // in any item) and N concurrent identical batches stampeded the server.
    // With per-item epoch-keyed single-flight, any mix of concurrent
    // batches and singles over the same queries computes each *distinct
    // item* exactly once.
    const BATCH_CLIENTS: usize = 3;
    const SINGLE_CLIENTS: usize = 3;
    let (_, server, _) = owner_setup(30, 1, 73);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(BATCH_CLIENTS + SINGLE_CLIENTS),
        server,
    )
    .unwrap();
    let addr = service.local_addr();
    // Wide range queries keep each computation slow enough that the
    // clients genuinely overlap.
    let query_a = Query::range(vec![0.5], -1.0, 2.0);
    let query_b = Query::range(vec![0.25], -1.0, 2.0);
    let batch = vec![query_a.clone(), query_b.clone()];

    let barrier = Arc::new(std::sync::Barrier::new(BATCH_CLIENTS + SINGLE_CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..BATCH_CLIENTS {
        let batch = batch.clone();
        let barrier = Arc::clone(&barrier);
        let mut client = ServiceClient::connect(addr).expect("connect");
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            client.batch(&batch).expect("batch").len()
        }));
    }
    for _ in 0..SINGLE_CLIENTS {
        let query = query_a.clone();
        let barrier = Arc::clone(&barrier);
        let mut client = ServiceClient::connect(addr).expect("connect");
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            client.query(&query).expect("single query");
            1
        }));
    }
    for thread in threads {
        thread.join().unwrap();
    }

    let stats = service.stats();
    assert_eq!(
        stats.cache_misses, 2,
        "two distinct items must compute exactly twice across {} batch and {} single clients",
        BATCH_CLIENTS, SINGLE_CLIENTS
    );
    // Every item lookup is accounted: 2 per batch, 1 per single.
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        (2 * BATCH_CLIENTS + SINGLE_CLIENTS) as u64
    );

    // A repeated batch with one changed query recomputes only the changed
    // item.
    let mut client = ServiceClient::connect(addr).unwrap();
    let query_c = Query::range(vec![0.75], -1.0, 2.0);
    client
        .batch(&[query_a.clone(), query_c.clone()])
        .expect("changed batch");
    let stats = stats_once_served(&service, (BATCH_CLIENTS + SINGLE_CLIENTS + 1) as u64);
    assert_eq!(
        stats.cache_misses, 3,
        "one changed query must incur exactly one extra miss"
    );

    // The whole-batch latency histogram saw every batch request.
    let batch_histogram = &stats
        .per_kind
        .iter()
        .find(|k| k.kind == "batch")
        .expect("batch kind tracked")
        .histogram;
    assert_eq!(batch_histogram.count, (BATCH_CLIENTS + 1) as u64);
    service.shutdown();
}

#[test]
fn republish_races_inflight_identical_queries_without_mixing_epochs() {
    // N clients hammer the *same* query while the owner hot-swaps the
    // dataset to the next epoch mid-run. Requirements: every response
    // verifies at its own envelope epoch (a mixed-epoch response — new
    // records under old signatures or vice versa — would fail), the epoch
    // stamp only ever moves forward per connection, and the cache counters
    // stay consistent (hits + misses == queries, with only a handful of
    // misses thanks to epoch-keyed single-flight dedup).
    const CLIENTS: usize = 6;
    const QUERIES_PER_CLIENT: usize = 15;
    let dataset = uniform_dataset(30, 1, 2025);
    let scheme = SignatureScheme::test_rsa(2025);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(CLIENTS),
        Server::new(
            dataset.clone(),
            IfmhTree::build_at_epoch(&dataset, SigningMode::MultiSignature, &scheme, 0),
        ),
    )
    .unwrap();
    let addr = service.local_addr();
    assert_eq!(service.epoch(), 0);

    // The republished dataset: same records, two attributes nudged.
    let mut updated = dataset.clone();
    updated.records[5].attrs[0] = (updated.records[5].attrs[0] + 0.31) % 1.0;
    updated.records[17].attrs[0] = (updated.records[17].attrs[0] + 0.53) % 1.0;
    let updated = Dataset::new(updated.records, updated.template, updated.domain);
    let updated_tree = IfmhTree::build_at_epoch(&updated, SigningMode::MultiSignature, &scheme, 1);

    // A wide range query keeps each computation slow enough for genuine
    // overlap between the clients and the swap.
    let query = Query::range(vec![0.5], -1.0, 2.0);
    let template = Arc::new(dataset.template.clone());
    let public_key: Arc<PublicKey> = Arc::new(scheme.public_key());
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let query = query.clone();
            let template = Arc::clone(&template);
            let public_key = Arc::clone(&public_key);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                barrier.wait();
                let mut epochs_seen = Vec::new();
                for round in 0..QUERIES_PER_CLIENT {
                    let (epoch, response) = client
                        .query_with_epoch(&query)
                        .unwrap_or_else(|e| panic!("client {i} round {round}: {e}"));
                    // The response must be internally consistent with its
                    // own stamp: records, VO and signatures all from one
                    // epoch's structure.
                    vaq_authquery::verify_at_epoch(
                        &query,
                        &response.records,
                        &response.vo,
                        &template,
                        public_key.as_ref(),
                        epoch,
                    )
                    .unwrap_or_else(|e| {
                        panic!("client {i} round {round}: mixed-epoch response at {epoch}: {e:?}")
                    });
                    epochs_seen.push(epoch);
                }
                epochs_seen
            })
        })
        .collect();

    barrier.wait();
    std::thread::sleep(Duration::from_millis(30));
    service
        .republish(Server::new(updated.clone(), updated_tree))
        .expect("hot swap mid-load");

    let mut all_epochs = Vec::new();
    for thread in threads {
        let epochs = thread.join().unwrap();
        // Per connection the stamp is monotone: once a client saw the new
        // epoch it never sees the old one again.
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epoch went backwards: {epochs:?}"
        );
        all_epochs.extend(epochs);
    }
    assert!(
        all_epochs.iter().all(|e| *e == 0 || *e == 1),
        "unexpected epoch in {all_epochs:?}"
    );

    let stats = service.shutdown();
    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        total,
        "every query is accounted a hit or a miss"
    );
    // Identical queries compute at most once per epoch, plus at most a
    // worker's worth of swap-window stragglers (a request that resolved the
    // old structure just before the swap re-computes under the old epoch's
    // key after the flush).
    assert!(
        stats.cache_misses >= 1 && stats.cache_misses <= 2 + CLIENTS as u64,
        "cache_misses inconsistent under republish race: {}",
        stats.cache_misses
    );
    assert_eq!(stats.epoch, 1, "final snapshot reports the new epoch");
}

#[test]
fn tagged_pipelining_races_a_republish_without_mixing_epochs() {
    // The multiplexed variant of the republish race: every client keeps a
    // *window* of tagged requests in flight on one connection (the service
    // dispatches them in parallel and may answer out of order) while the
    // owner hot-swaps to the next epoch mid-run. Each response must still
    // verify as one self-consistent epoch — records, VO and signatures from
    // one structure — and the cache counters must stay exact.
    const CLIENTS: usize = 4;
    const WINDOW: usize = 5;
    const ROUNDS: usize = 6;
    let dataset = uniform_dataset(30, 1, 3031);
    let scheme = SignatureScheme::test_rsa(3031);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(CLIENTS),
        Server::new(
            dataset.clone(),
            IfmhTree::build_at_epoch(&dataset, SigningMode::MultiSignature, &scheme, 0),
        ),
    )
    .unwrap();
    let addr = service.local_addr();

    let mut updated = dataset.clone();
    updated.records[3].attrs[0] = (updated.records[3].attrs[0] + 0.41) % 1.0;
    let updated = Dataset::new(updated.records, updated.template, updated.domain);
    let updated_tree = IfmhTree::build_at_epoch(&updated, SigningMode::MultiSignature, &scheme, 1);

    let query = Query::range(vec![0.5], -1.0, 2.0);
    let template = Arc::new(dataset.template.clone());
    let public_key: Arc<PublicKey> = Arc::new(scheme.public_key());
    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let query = query.clone();
            let template = Arc::clone(&template);
            let public_key = Arc::clone(&public_key);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                barrier.wait();
                let mut epochs_seen = Vec::new();
                for round in 0..ROUNDS {
                    let tags: Vec<u64> = (0..WINDOW)
                        .map(|_| client.send_tagged(&Request::Query(query.clone())).unwrap())
                        .collect();
                    // Collect the window back to front: with out-of-order
                    // completion this exercises parking and re-association
                    // under the race, not just FIFO delivery.
                    for &tag in tags.iter().rev() {
                        let (epoch, response) = match client.receive_tagged(tag) {
                            Ok(Response::Query { epoch, response }) => (epoch, response),
                            other => panic!("client {i} round {round}: {other:?}"),
                        };
                        vaq_authquery::verify_at_epoch(
                            &query,
                            &response.records,
                            &response.vo,
                            &template,
                            public_key.as_ref(),
                            epoch,
                        )
                        .unwrap_or_else(|e| {
                            panic!(
                                "client {i} round {round}: mixed-epoch response at {epoch}: {e:?}"
                            )
                        });
                        epochs_seen.push(epoch);
                    }
                }
                epochs_seen
            })
        })
        .collect();

    barrier.wait();
    std::thread::sleep(Duration::from_millis(25));
    service
        .republish(Server::new(updated.clone(), updated_tree))
        .expect("hot swap mid-load");

    let mut all_epochs = Vec::new();
    for thread in threads {
        all_epochs.extend(thread.join().unwrap());
    }
    // Tagged requests dispatch in parallel, so unlike the serialized path
    // there is no per-connection receive-order monotonicity to assert — but
    // every stamp is one of the two published epochs, and both sides of the
    // swap were actually exercised somewhere in the run.
    assert!(
        all_epochs.iter().all(|e| *e == 0 || *e == 1),
        "unexpected epoch in {all_epochs:?}"
    );

    let stats = service.shutdown();
    let total = (CLIENTS * WINDOW * ROUNDS) as u64;
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        total,
        "every query is accounted a hit or a miss"
    );
    // Identical queries compute at most once per epoch plus swap-window
    // stragglers — never once per in-flight tag.
    assert!(
        stats.cache_misses >= 1 && stats.cache_misses <= 2 + (2 * CLIENTS) as u64,
        "cache_misses inconsistent under a multiplexed republish race: {}",
        stats.cache_misses
    );
    assert_eq!(stats.epoch, 1, "final snapshot reports the new epoch");
}

#[test]
fn connection_fatal_error_reply_desyncs_the_client() {
    // Regression: after a FrameTooLarge/Malformed/ShuttingDown reply the
    // server closes the connection, but the client left `desynced == false`
    // — so the next call failed confusingly on the dead socket instead of
    // with the explicit reconnect error.
    let (_, server, _) = owner_setup(10, 1, 81);
    let service =
        QueryService::bind(ServiceConfig::ephemeral().max_frame_bytes(64), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    // 50 weights encode to well over the 64-byte frame limit.
    let oversized = Query::top_k(vec![0.5; 50], 2);
    match client.query(&oversized).unwrap_err() {
        ServiceError::Remote(reply) => assert_eq!(reply.code, ErrorCode::FrameTooLarge),
        other => panic!("expected a remote FrameTooLarge, got {other}"),
    }

    // The connection is now marked desynced: the next call fails with the
    // explicit reconnect error before touching the socket.
    match client.ping().unwrap_err() {
        ServiceError::Io(e) => {
            assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe);
            assert!(e.to_string().contains("reconnect"), "{e}");
        }
        other => panic!("expected the desynced reconnect error, got {other}"),
    }

    // A fresh connection works.
    let mut fresh = ServiceClient::connect(service.local_addr()).unwrap();
    fresh.ping().unwrap();
    service.shutdown();
}

#[test]
fn rejected_frames_still_count_inbound_bytes() {
    use std::io::Write;
    // Regression: bytes_in was only counted for frames that decoded; the
    // header (and any partial payload) of malformed or oversized frames was
    // read off the wire but never accounted.
    let (_, server, _) = owner_setup(10, 1, 91);
    let service =
        QueryService::bind(ServiceConfig::ephemeral().max_frame_bytes(1024), server).unwrap();
    let addr = service.local_addr();
    let before = service.stats().bytes_in;

    // Garbage: 12 bytes of non-VAQ1 traffic.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"GARBAGEBYTES").unwrap();
    let _: Result<Option<Response>, _> = vaq_service::frame::read_message(&mut stream, 1 << 20);
    drop(stream);

    // Oversized: an honest header declaring a payload above the limit.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&vaq_wire::MAGIC);
    header.extend_from_slice(&vaq_wire::VERSION.to_le_bytes());
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());
    stream.write_all(&header).unwrap();
    let _: Result<Option<Response>, _> = vaq_service::frame::read_message(&mut stream, 1 << 20);
    drop(stream);

    // Both rejected frames consumed at least their 10-byte headers.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let after = service.stats().bytes_in;
        if after >= before + 20 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "bytes_in only grew from {before} to {after}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    service.shutdown();
}

#[test]
fn load_generator_drives_and_verifies_a_full_run() {
    let (dataset, server, scheme) = owner_setup(14, 1, 51);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(4), server).unwrap();

    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1),
        ..LoadGenerator::new(
            service.local_addr(),
            4,
            6,
            dataset.template.clone(),
            scheme.public_key(),
        )
    };
    let report = generator.run(&dataset).unwrap();
    assert_eq!(report.total_requests, 24);
    assert_eq!(report.verified, 24);
    assert_eq!(report.failures, 0);
    assert!(report.throughput_qps() > 0.0);
    assert!(report.latency_quantile_micros(0.5) <= report.latency_quantile_micros(0.99));
    assert!(!report.summary().is_empty());

    let stats = service.shutdown();
    assert!(stats.requests_served >= 24);
    service_stats_cover_all_kinds(&stats);
}

fn service_stats_cover_all_kinds(stats: &vaq_wire::StatsSnapshot) {
    for kind in ["topk", "range", "knn"] {
        assert!(
            stats
                .per_kind
                .iter()
                .any(|k| k.kind == kind && k.histogram.count > 0),
            "kind {kind} saw no traffic"
        );
    }
}
