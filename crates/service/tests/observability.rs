//! Observability integration suite: request-scoped stage tracing, deep
//! stats over the wire, per-error counters, cache gauges, the slow-request
//! log, and client-side scatter observability on the sharded tier.
//!
//! The load-bearing invariants:
//!
//! * every request is traced — each per-stage histogram holds exactly one
//!   observation per served request;
//! * stage spans are disjoint sub-intervals of the request, so per-kind
//!   stage sums stay within the kind's whole-request histogram bounds;
//! * cache probes, error codes and cache occupancy reconcile with the
//!   requests that were actually issued.

use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_funcdb::Dataset;
use vaq_service::{
    QueryService, ServiceClient, ServiceConfig, ShardedDeployment, SlowLogSink, Stage,
};
use vaq_wire::StatsDeep;
use vaq_workload::uniform_dataset;

/// Owner-side setup: dataset and a served authenticated structure.
fn owner_setup(n: usize, seed: u64) -> (Dataset, Server) {
    let dataset = uniform_dataset(n, 1, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    (dataset, server)
}

/// Drives a deterministic mixed workload over one connection: 3 top-k (one
/// repeated, so the cache must hit), 2 range, 2 KNN, and one 3-query batch.
/// Returns (requests issued, query-shaped items issued).
fn drive_mixed_workload(client: &mut ServiceClient) -> (u64, u64) {
    let topk = Query::top_k(vec![0.5], 3);
    client.query(&topk).expect("topk");
    client.query(&topk).expect("repeated topk hits the cache");
    client.query(&Query::top_k(vec![0.25], 2)).expect("topk");
    client
        .query(&Query::range(vec![0.5], 0.0, 10.0))
        .expect("range");
    client
        .query(&Query::range(vec![0.75], -5.0, 5.0))
        .expect("range");
    client.query(&Query::knn(vec![0.5], 2, 1.0)).expect("knn");
    client.query(&Query::knn(vec![0.25], 1, 0.5)).expect("knn");
    client
        .batch(&[
            Query::top_k(vec![0.125], 1),
            Query::range(vec![0.5], 0.0, 1.0),
            Query::knn(vec![0.75], 1, 2.0),
        ])
        .expect("batch");
    // 7 single requests + 1 batch request; 7 + 3 cache-probed query items.
    (8, 10)
}

/// Every hot-path stage label, in hot-path order — the vocabulary the deep
/// snapshot must speak.
fn stage_labels() -> Vec<&'static str> {
    Stage::ALL.iter().map(|s| s.label()).collect()
}

#[test]
fn every_request_lands_in_every_stage_histogram() {
    let (_, server) = owner_setup(14, 0xb5);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(2), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    let (requests, query_items) = drive_mixed_workload(&mut client);

    let deep: StatsDeep = client.stats_deep().expect("deep stats over the wire");
    let snapshot = &deep.snapshot;
    assert_eq!(snapshot.requests_served, requests);
    assert_eq!(snapshot.errors, 0);
    assert_eq!(snapshot.cache_hits + snapshot.cache_misses, query_items);
    assert!(snapshot.cache_hits >= 1, "repeated query must hit");

    // One observation per request in every stage histogram: the trace is
    // recorded exactly once per served request, for all stages at once.
    assert_eq!(
        deep.per_stage
            .iter()
            .map(|s| s.stage.as_str())
            .collect::<Vec<_>>(),
        stage_labels(),
    );
    for stage in &deep.per_stage {
        assert_eq!(
            stage.histogram.count, requests,
            "stage {} must hold one observation per request",
            stage.stage
        );
        assert_eq!(
            stage.histogram.bucket_counts.iter().sum::<u64>(),
            stage.histogram.count,
            "stage {} buckets must sum to its count",
            stage.stage
        );
    }

    // Whole-request per-kind histograms: 3 topk, 2 range, 2 knn, 1 batch.
    for (kind, expected) in [("topk", 3), ("range", 2), ("knn", 2), ("batch", 1)] {
        let histogram = &snapshot
            .per_kind
            .iter()
            .find(|k| k.kind == kind)
            .unwrap_or_else(|| panic!("missing kind {kind}"))
            .histogram;
        assert_eq!(histogram.count, expected, "kind {kind}");
    }
    service.shutdown();
}

#[test]
fn stage_spans_sum_within_whole_request_bounds_for_every_kind() {
    let (_, server) = owner_setup(14, 0xb6);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(2), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    drive_mixed_workload(&mut client);

    let deep = client.stats_deep().unwrap();
    for kind in ["topk", "range", "knn", "batch"] {
        let whole = &deep
            .snapshot
            .per_kind
            .iter()
            .find(|k| k.kind == kind)
            .unwrap_or_else(|| panic!("missing whole-request histogram for {kind}"))
            .histogram;
        let stages = &deep
            .per_kind_stage
            .iter()
            .find(|k| k.kind == kind)
            .unwrap_or_else(|| panic!("missing stage attribution for {kind}"))
            .stages;
        assert_eq!(
            stages.iter().map(|s| s.stage.as_str()).collect::<Vec<_>>(),
            stage_labels(),
        );
        // The stages are disjoint sub-intervals of the request, so their
        // summed micros can never exceed the whole-request histogram's sum,
        // and no single stage can outlast the slowest whole request.
        let stage_sum: u64 = stages.iter().map(|s| s.sum_micros).sum();
        assert!(
            stage_sum <= whole.sum_micros,
            "{kind}: stage sum {stage_sum}us exceeds whole-request sum {}us",
            whole.sum_micros
        );
        for stage in stages {
            assert_eq!(
                stage.count, whole.count,
                "{kind}/{}: every request of the kind records every stage",
                stage.stage
            );
            assert!(
                stage.max_micros <= whole.max_micros,
                "{kind}/{}: stage max {}us exceeds whole-request max {}us",
                stage.stage,
                stage.max_micros,
                whole.max_micros
            );
        }
    }
    service.shutdown();
}

#[test]
fn metrics_stay_consistent_under_concurrent_clients() {
    let (_, server) = owner_setup(14, 0xc0);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(4), server).unwrap();
    let addr = service.local_addr();

    const CLIENTS: usize = 4;
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                drive_mixed_workload(&mut client)
            })
        })
        .collect();
    let (mut requests, mut query_items) = (0u64, 0u64);
    for thread in threads {
        let (r, q) = thread.join().expect("client thread");
        requests += r;
        query_items += q;
    }

    // A worker bumps the trace into the metrics just after writing the
    // response, so the last in-flight request may land an instant after its
    // client returned; wait for the counters to quiesce before asserting.
    let mut scraper = ServiceClient::connect(addr).unwrap();
    let mut deep = scraper.stats_deep().unwrap();
    for _ in 0..50 {
        if deep.snapshot.requests_served >= requests {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        deep = scraper.stats_deep().unwrap();
    }

    let snapshot = &deep.snapshot;
    assert!(snapshot.requests_served >= requests);
    assert_eq!(snapshot.errors, 0);
    // Cache probes reconcile exactly: one hit-or-miss per query-shaped item.
    assert_eq!(snapshot.cache_hits + snapshot.cache_misses, query_items);
    for stage in &deep.per_stage {
        assert_eq!(
            stage.histogram.count, snapshot.requests_served,
            "stage {} counts must equal requests served",
            stage.stage
        );
    }
    // Per-kind whole-request histograms account for every query request.
    let per_kind_total: u64 = snapshot.per_kind.iter().map(|k| k.histogram.count).sum();
    assert_eq!(per_kind_total, CLIENTS as u64 * 8);

    // A second scrape is monotone in every counter.
    let later = scraper.stats_deep().unwrap();
    assert!(later.snapshot.requests_served > snapshot.requests_served);
    assert!(later.snapshot.uptime_micros >= snapshot.uptime_micros);
    assert!(later.snapshot.bytes_in > snapshot.bytes_in);
    for (before, after) in deep.per_stage.iter().zip(&later.per_stage) {
        assert!(after.histogram.count >= before.histogram.count);
        assert!(after.histogram.sum_micros >= before.histogram.sum_micros);
        assert!(after.histogram.max_micros >= before.histogram.max_micros);
    }
    service.shutdown();
}

#[test]
fn error_replies_break_out_per_code() {
    let (_, server) = owner_setup(10, 0xb7);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(1), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    // An empty batch is a typed BadQuery; ShardInfo against an unsharded
    // service is a typed NotSharded. Both leave the connection usable.
    assert!(client.batch(&[]).is_err());
    assert!(client.shard_info().is_err());
    client
        .query(&Query::top_k(vec![0.5], 2))
        .expect("healthy after errors");

    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 2);
    let count = |code: &str| {
        stats
            .per_error
            .iter()
            .find(|e| e.code == code)
            .unwrap_or_else(|| panic!("missing error code {code}"))
            .count
    };
    assert_eq!(count("bad_query"), 1);
    assert_eq!(count("not_sharded"), 1);
    assert_eq!(
        stats.per_error.iter().map(|e| e.count).sum::<u64>(),
        stats.errors,
        "per-code counts must reconcile with the error total"
    );
    service.shutdown();
}

#[test]
fn cache_gauges_and_uptime_are_scraped_and_monotone() {
    let (_, server) = owner_setup(12, 0xb8);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(1), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    let before = client.stats().unwrap();
    assert_eq!(before.cache_entries, 0);
    assert_eq!(before.cache_bytes, 0);

    client.query(&Query::top_k(vec![0.5], 3)).unwrap();
    client.query(&Query::top_k(vec![0.25], 2)).unwrap();
    let after = client.stats().unwrap();
    assert_eq!(after.cache_entries, 2, "both responses stay resident");
    assert!(after.cache_bytes > 0);
    assert_eq!(after.cache_evictions, 0);
    assert!(
        after.uptime_micros >= before.uptime_micros,
        "uptime must be monotone across scrapes"
    );
    assert!(after.requests_served > before.requests_served);
    service.shutdown();
}

#[test]
fn slow_request_log_emits_structured_json_lines() {
    let (_, server) = owner_setup(12, 0xb9);
    let (sink, buffer) = SlowLogSink::buffer();
    let config = ServiceConfig::ephemeral()
        .workers(1)
        .slow_request_micros(0) // every request is "slow": deterministic capture
        .slow_log_sink(sink);
    let service = QueryService::bind(config, server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    client.query(&Query::top_k(vec![0.5], 2)).unwrap();
    client.query(&Query::range(vec![0.5], 0.0, 5.0)).unwrap();
    service.shutdown();

    let log = String::from_utf8(buffer.lock().clone()).expect("utf-8 log");
    let lines: Vec<&str> = log.lines().collect();
    assert!(lines.len() >= 2, "both requests logged:\n{log}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSON object: {line}"
        );
        assert!(line.contains("\"event\":\"slow_request\""), "{line}");
        assert!(line.contains("\"epoch\":0"), "{line}");
        assert!(line.contains("\"total_micros\":"), "{line}");
        for stage in stage_labels() {
            assert!(line.contains(&format!("\"{stage}\":")), "{stage} in {line}");
        }
    }
    assert!(lines[0].contains("\"kind\":\"topk\""), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"range\""), "{}", lines[1]);
}

#[test]
fn sharded_deep_stats_and_client_observability_reconcile() {
    let dataset = uniform_dataset(18, 1, 0xba);
    let mut deployment = ShardedDeployment::launch(
        &dataset,
        2,
        SigningMode::MultiSignature,
        0xba,
        ServiceConfig::ephemeral().workers(2),
    )
    .unwrap();
    let mut client = deployment.client().unwrap();

    for k in 1..=3 {
        client.query_verified(&Query::top_k(vec![0.5], k)).unwrap();
    }
    client
        .batch_verified(&[
            Query::top_k(vec![0.25], 2),
            Query::range(vec![0.5], 0.0, 10.0),
        ])
        .unwrap();

    // Client-side: 4 scatter rounds, every leg accounted on both shards.
    let obs = client.observability().clone();
    assert_eq!(obs.scatters, 4);
    assert_eq!(obs.leg_latency.len(), 2);
    for leg in &obs.leg_latency {
        assert_eq!(leg.legs, 4, "every scatter crosses every shard");
        assert!(leg.max_micros >= leg.mean_micros());
        assert!(leg.total_micros >= leg.max_micros);
    }
    assert_eq!(obs.failovers, 0);
    assert_eq!(obs.stale_rejections, 0);
    assert_eq!(obs.map_refreshes, 0);
    assert_eq!(
        obs.max_leg_micros(),
        obs.leg_latency.iter().map(|l| l.max_micros).max().unwrap()
    );

    // Server-side: every shard serves deep stats over the wire, and every
    // shard saw all 4 scattered requests (plus its handshake).
    let all = client.stats_deep_all().unwrap();
    assert_eq!(all.len(), 2);
    for deep in &all {
        assert!(deep.snapshot.requests_served >= 4);
        for stage in &deep.per_stage {
            assert_eq!(stage.histogram.count, deep.snapshot.requests_served);
        }
    }

    // Update churn: a republish turns the pinned epoch stale; the rejection
    // and the adopted refresh both land in the client-side counters.
    deployment.republish(&dataset).unwrap();
    let err = client
        .query_verified(&Query::top_k(vec![0.5], 2))
        .expect_err("pinned epoch went stale");
    assert!(err.is_stale_epoch());
    assert_eq!(client.refresh().unwrap(), 1);
    client.query_verified(&Query::top_k(vec![0.5], 2)).unwrap();

    let obs = client.observability();
    assert!(obs.stale_rejections >= 1, "stale legs counted");
    assert_eq!(obs.map_refreshes, 1, "one adopted refresh");
    deployment.shutdown();
}

#[test]
fn failover_activations_are_counted() {
    let dataset = uniform_dataset(16, 1, 0xbb);
    let mut deployment = ShardedDeployment::launch_with_standbys(
        &dataset,
        2,
        SigningMode::MultiSignature,
        0xbb,
        ServiceConfig::ephemeral().workers(2),
        1,
    )
    .unwrap();
    let mut client = deployment.client().unwrap();
    client.query_verified(&Query::top_k(vec![0.5], 2)).unwrap();
    assert_eq!(client.observability().failovers, 0);

    // Kill shard 0's primary mid-session: the next scatter leg dies and is
    // retried against the attested standby — one failover activation.
    deployment.stop_shard(0);
    client
        .query_verified(&Query::top_k(vec![0.5], 3))
        .expect("standby serves the leg");
    assert!(client.observability().failovers >= 1);
    deployment.shutdown();
}
