//! End-to-end suite for the sharded deployment tier: a ≥3-shard deployment
//! over localhost TCP, every per-shard response cryptographically verified,
//! merged answers compared byte-for-byte against a single-server deployment
//! hosting the same logical dataset, and shard-outage behaviour.

use std::time::Duration;

use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_funcdb::Dataset;
use vaq_service::{
    attest_shard_map, partition_dataset, LoadGenerator, PartitionStrategy, QueryService,
    ServiceClient, ServiceConfig, ServiceError, ShardedClient, ShardedDeployment,
    ShardedPublication,
};
use vaq_wire::WireEncode;
use vaq_workload::{uniform_dataset, QueryGenerator, QueryMix};

const SHARDS: usize = 3;

/// A single-server deployment over the same logical dataset, for the
/// merged-equals-unsharded comparison.
fn single_server(dataset: &Dataset, seed: u64) -> (QueryService, SignatureScheme) {
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(dataset, SigningMode::MultiSignature, &scheme);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(2),
        Server::new(dataset.clone(), tree),
    )
    .expect("bind single-server service");
    (service, scheme)
}

/// Deterministic queries covering all three kinds, including edge cases
/// (k = 1, k beyond the dataset, empty and full ranges).
fn query_suite(dataset: &Dataset, seed: u64) -> Vec<Query> {
    let mut generator = QueryGenerator::new(dataset, seed);
    let mut queries: Vec<Query> = generator
        .mixed_batch(9, 3)
        .iter()
        .map(vaq_service::spec_to_query)
        .collect();
    let (lo, hi) = generator.score_range();
    queries.extend([
        Query::top_k(generator.weights(), 1),
        Query::top_k(generator.weights(), dataset.len()),
        Query::top_k(generator.weights(), dataset.len() + 10),
        Query::range(generator.weights(), lo - 2.0, hi + 2.0),
        Query::range(generator.weights(), hi + 1.0, hi + 2.0), // empty
        Query::knn(generator.weights(), 1, (lo + hi) / 2.0),
        Query::knn(generator.weights(), 7, hi),
        Query::knn(generator.weights(), dataset.len() + 3, lo),
    ]);
    queries
}

#[test]
fn sharded_answers_match_a_single_server_byte_for_byte() {
    let dataset = uniform_dataset(24, 1, 2026);
    let (single, _) = single_server(&dataset, 2026);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();

    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xdead,
        ServiceConfig::ephemeral().workers(2),
    )
    .expect("launch sharded deployment");
    assert_eq!(deployment.shard_count(), SHARDS);
    let mut sharded_client = deployment.client().expect("connect sharded client");

    for query in query_suite(&dataset, 555) {
        let merged = sharded_client
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("sharded {query}: {e}"));
        let single_response = single_client
            .query(&query)
            .unwrap_or_else(|e| panic!("single {query}: {e}"));

        assert_eq!(
            merged.records, single_response.records,
            "sharded answer diverges from the single server for {query}"
        );
        // Byte-identical, not just structurally equal: the canonical wire
        // encodings of the result lists must agree.
        let merged_bytes: Vec<Vec<u8>> = merged.records.iter().map(|r| r.to_wire_bytes()).collect();
        let single_bytes: Vec<Vec<u8>> = single_response
            .records
            .iter()
            .map(|r| r.to_wire_bytes())
            .collect();
        assert_eq!(merged_bytes, single_bytes, "wire bytes diverge for {query}");

        // The merged scores are ascending — the single server's result
        // order — and aligned with the records.
        assert_eq!(merged.scores.len(), merged.records.len());
        assert!(merged.scores.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(merged.per_shard_returned.len(), SHARDS);
    }

    // Every shard served queries (round-robin partitioning guarantees all
    // shards hold records, and every query scatters to all of them).
    let per_shard = sharded_client.stats_all().expect("stats from every shard");
    assert_eq!(per_shard.len(), SHARDS);
    for (shard_id, stats) in per_shard.iter().enumerate() {
        assert!(
            stats.requests_served > 0,
            "shard {shard_id} served no requests"
        );
    }

    single.shutdown();
    deployment.shutdown();
}

#[test]
fn sharded_batches_match_an_unsharded_batch_byte_for_byte() {
    // The acceptance scenario for batch scatter-gather: one epoch-pinned
    // batch frame per shard, every per-shard sub-response verified under
    // that shard's attested key, each sub-query merged exactly like a
    // single sharded query — so the merged batch answers are byte-identical
    // to an unsharded `ServiceClient::batch` at the same epoch.
    let dataset = uniform_dataset(24, 1, 3030);
    let (single, _) = single_server(&dataset, 3030);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();

    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xbb,
        ServiceConfig::ephemeral().workers(2),
    )
    .expect("launch sharded deployment");
    let mut sharded_client = deployment.client().expect("connect sharded client");
    assert_eq!(sharded_client.epoch(), single.epoch(), "same epoch");

    // A mixed top-k/range/KNN batch, edge cases included.
    let queries = query_suite(&dataset, 888);
    let merged = sharded_client
        .batch_verified(&queries)
        .expect("sharded batch");
    let unsharded = single_client.batch(&queries).expect("unsharded batch");
    assert_eq!(merged.len(), queries.len());
    assert_eq!(unsharded.len(), queries.len());

    for ((query, merged), single_response) in queries.iter().zip(&merged).zip(&unsharded) {
        assert_eq!(
            merged.records, single_response.records,
            "sharded batch answer diverges for {query}"
        );
        let merged_bytes: Vec<Vec<u8>> = merged.records.iter().map(|r| r.to_wire_bytes()).collect();
        let single_bytes: Vec<Vec<u8>> = single_response
            .records
            .iter()
            .map(|r| r.to_wire_bytes())
            .collect();
        assert_eq!(merged_bytes, single_bytes, "wire bytes diverge for {query}");
        assert_eq!(merged.scores.len(), merged.records.len());
        assert!(merged.scores.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(merged.per_shard_returned.len(), SHARDS);
    }

    // The batch answers also agree with the same queries issued singly
    // through the sharded path (one protocol, one merge).
    for (query, batched) in queries.iter().zip(&merged).take(4) {
        let singly = sharded_client
            .query_verified(query)
            .expect("single sharded query");
        assert_eq!(singly.records, batched.records, "{query}");
    }

    // Each shard saw exactly one batch frame per sharded batch request —
    // not one frame per query.
    let per_shard = sharded_client.stats_all().expect("per-shard stats");
    for (shard_id, stats) in per_shard.iter().enumerate() {
        let batch_count = stats
            .per_kind
            .iter()
            .find(|k| k.kind == "batch")
            .map(|k| k.histogram.count)
            .unwrap_or(0);
        assert_eq!(batch_count, 1, "shard {shard_id} batch requests");
    }

    // An empty batch errors exactly like the unsharded path: the shards
    // reject the empty frame with a typed BadQuery, and the client's
    // connections stay usable.
    match sharded_client.batch_verified(&[]).expect_err("empty batch") {
        ServiceError::ShardFailed { error, .. } => match *error {
            ServiceError::Remote(reply) => {
                assert_eq!(reply.code, vaq_wire::ErrorCode::BadQuery)
            }
            other => panic!("expected a remote BadQuery, got {other}"),
        },
        other => panic!("expected ShardFailed, got {other}"),
    }
    sharded_client
        .query_verified(&queries[0])
        .expect("client usable after the rejected empty batch");

    single.shutdown();
    deployment.shutdown();
}

#[test]
fn load_run_connecting_with_a_stale_publication_refreshes_and_completes() {
    // Regression: the sharded load driver rode stale-epoch rejections
    // mid-run, but its *initial* connect handshook with the configured
    // publication verbatim — a republish landing between the publication
    // snapshot and the connect aborted the whole run with a typed
    // ShardFailed(StaleEpoch) instead of riding the rollout. Here every
    // shard has already moved to epoch 1 while the generator still holds
    // the epoch-0 publication, so the old driver could never connect.
    let dataset = uniform_dataset(18, 1, 177);
    let mut updated = dataset.clone();
    updated.records[3].attrs[0] = (updated.records[3].attrs[0] + 0.37) % 1.0;
    let updated = Dataset::new(updated.records, updated.template, updated.domain);

    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xa7,
        ServiceConfig::ephemeral().workers(4),
    )
    .unwrap();
    let stale_publication = deployment.publication().clone();
    assert_eq!(deployment.republish(&updated).expect("republish"), 1);

    let generator = LoadGenerator::sharded(deployment.addrs().to_vec(), stale_publication, 2, 6);
    let report = generator
        .run(&dataset)
        .expect("the run must refresh the signed map at connect, not abort");
    assert_eq!(report.total_requests, 12);
    assert_eq!(report.failures, 0, "zero verification failures");
    assert!(
        report.epoch_refreshes >= 1,
        "each client's connect must have adopted the newer signed map"
    );
    deployment.shutdown();
}

#[test]
fn sharded_batch_racing_republish_converges_without_mixing_epochs() {
    // Batches ride a live republication exactly like singles: a shard that
    // moved on answers the pinned batch frame with a typed stale-epoch
    // rejection (never a mixed-epoch merge — every sub-response is verified
    // at the pinned epoch under epoch-bound signatures), and the driver
    // converges by re-fetching the signed map.
    let dataset = uniform_dataset(24, 1, 141);
    let mut updated = dataset.clone();
    for record in updated.records.iter_mut().take(6) {
        record.attrs[0] = (record.attrs[0] + 0.41) % 1.0;
    }
    let updated = vaq_funcdb::Dataset::new(updated.records, updated.template, updated.domain);

    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xd1,
        ServiceConfig::ephemeral().workers(4),
    )
    .unwrap();

    // Every second request carries a 2..4-query batch.
    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1).with_batches(4, 2, 4),
        ..LoadGenerator::sharded(
            deployment.addrs().to_vec(),
            deployment.publication().clone(),
            3,
            24,
        )
    };
    let load = {
        let dataset = dataset.clone();
        std::thread::spawn(move || generator.run(&dataset))
    };
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(deployment.republish(&updated).expect("live republish"), 1);

    let report = load
        .join()
        .expect("load thread")
        .expect("batched load survives the republication");
    assert_eq!(report.total_requests, 72);
    assert!(report.batches > 0, "the mix must issue batches");
    assert_eq!(report.failures, 0, "zero verification failures");
    assert_eq!(
        report.verified,
        report.total_requests - report.batches + report.batch_queries,
        "every single and every batch member verified"
    );

    // Post-churn, a fresh client's batches are byte-identical to a fresh
    // unsharded epoch-1 server over the republished dataset.
    let mut converged =
        ShardedClient::connect_from_map(deployment.publication()).expect("post-churn connect");
    assert_eq!(converged.epoch(), 1);
    let scheme = SignatureScheme::test_rsa(141);
    let single = vaq_authquery::Server::new(
        updated.clone(),
        vaq_authquery::IfmhTree::build_at_epoch(&updated, SigningMode::MultiSignature, &scheme, 1),
    );
    let queries = query_suite(&updated, 1234);
    let merged = converged.batch_verified(&queries).expect("epoch-1 batch");
    for (query, batched) in queries.iter().zip(&merged) {
        let expected = single.process(query);
        let merged_bytes: Vec<Vec<u8>> =
            batched.records.iter().map(|r| r.to_wire_bytes()).collect();
        let expected_bytes: Vec<Vec<u8>> =
            expected.records.iter().map(|r| r.to_wire_bytes()).collect();
        assert_eq!(merged_bytes, expected_bytes, "{query}");
    }
    deployment.shutdown();
}

#[test]
fn standby_completes_a_batch_after_a_primary_kill() {
    // A primary dies mid-batch-session: the dead scatter leg fails over to
    // the attested standby address and the whole batch completes fully
    // verified — byte-identical to an unsharded server, zero verification
    // failures, no client-visible outage.
    let dataset = uniform_dataset(24, 1, 151);
    let mut deployment = ShardedDeployment::launch_with_standbys(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xe1,
        ServiceConfig::ephemeral().workers(2),
        1,
    )
    .unwrap();
    let (single, _) = single_server(&dataset, 151);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();
    let mut client = deployment.client().expect("connect to primaries");

    let queries = vec![
        Query::top_k(vec![0.45], 6),
        Query::range(vec![0.3], 0.0, 0.9),
        Query::knn(vec![0.6], 3, 0.5),
    ];
    client.batch_verified(&queries).expect("healthy batch");

    deployment.stop_shard(1);
    for round in 0..5 {
        let merged = client
            .batch_verified(&queries)
            .unwrap_or_else(|e| panic!("failover round {round}: {e}"));
        let expected = single_client.batch(&queries).unwrap();
        for ((query, batched), expected) in queries.iter().zip(&merged).zip(&expected) {
            let merged_bytes: Vec<Vec<u8>> =
                batched.records.iter().map(|r| r.to_wire_bytes()).collect();
            let expected_bytes: Vec<Vec<u8>> =
                expected.records.iter().map(|r| r.to_wire_bytes()).collect();
            assert_eq!(merged_bytes, expected_bytes, "round {round}: {query}");
        }
    }
    single.shutdown();
    deployment.shutdown();
}

#[test]
fn sharded_deployment_works_in_two_dimensions() {
    let dataset = uniform_dataset(15, 2, 31);
    let (single, _) = single_server(&dataset, 31);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();

    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xbeef,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let mut sharded_client = deployment.client().unwrap();

    for query in query_suite(&dataset, 777).into_iter().take(9) {
        let merged = sharded_client
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("sharded {query}: {e}"));
        let single_response = single_client.query(&query).unwrap();
        assert_eq!(merged.records, single_response.records, "{query}");
    }
    single.shutdown();
    deployment.shutdown();
}

#[test]
fn shard_outage_yields_a_typed_error_not_a_partial_answer() {
    let dataset = uniform_dataset(18, 1, 47);
    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xfeed,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let mut client = deployment.client().unwrap();

    // Healthy deployment answers.
    let query = Query::top_k(vec![0.4], 5);
    let healthy = client.query_verified(&query).expect("healthy query");
    assert_eq!(healthy.records.len(), 5);

    // Take shard 1 down; the next query must fail with the typed per-shard
    // error naming that shard — never a silent 2-shard "answer".
    deployment.stop_shard(1);
    let mut failures = 0;
    for _ in 0..10 {
        match client.query_verified(&query) {
            Err(ServiceError::ShardFailed { shard_id, .. }) => {
                assert_eq!(shard_id, 1, "the downed shard must be named");
                failures += 1;
                break;
            }
            // The shard's ShuttingDown reply can race the socket close; a
            // retry settles onto the dead-connection path.
            Err(other) => panic!("expected ShardFailed, got {other}"),
            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(failures > 0, "a 2-of-3 deployment kept answering");

    // A fresh connect also fails against the downed shard.
    match ShardedClient::connect(deployment.addrs(), deployment.publication()) {
        Err(ServiceError::ShardFailed { shard_id, .. }) => assert_eq!(shard_id, 1),
        Err(other) => panic!("expected ShardFailed on connect, got {other}"),
        Ok(_) => panic!("connected to a deployment with a downed shard"),
    }
    deployment.shutdown();
}

#[test]
fn forged_or_mismatched_publications_are_rejected() {
    let dataset = uniform_dataset(12, 1, 53);
    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xabcd,
        ServiceConfig::ephemeral(),
    )
    .unwrap();

    // Wrong master key: the shard map signature must not verify.
    let mut forged = deployment.publication().clone();
    forged.master_key = SignatureScheme::test_rsa(0x666).public_key();
    match ShardedClient::connect(deployment.addrs(), &forged) {
        Err(ServiceError::ShardMap(reason)) => {
            assert!(reason.contains("signature"), "{reason}")
        }
        other => panic!(
            "expected a ShardMap rejection, got {other:?}",
            other = other.err()
        ),
    }

    // Mis-wired addresses: shard 0's socket actually hosts shard 2, which
    // the per-connection handshake against the attested map catches (and
    // names the offending shard).
    let mut swapped: Vec<_> = deployment.addrs().to_vec();
    swapped.reverse();
    match ShardedClient::connect(&swapped, deployment.publication()) {
        Err(ServiceError::ShardFailed { shard_id: 0, error }) => match *error {
            ServiceError::ShardMap(reason) => assert!(reason.contains("shard"), "{reason}"),
            other => panic!("expected a ShardMap handshake rejection, got {other}"),
        },
        other => panic!(
            "expected a handshake rejection, got {other:?}",
            other = other.err()
        ),
    }

    // Too few addresses for the attested shard count.
    match ShardedClient::connect(&deployment.addrs()[..SHARDS - 1], deployment.publication()) {
        Err(ServiceError::ShardMap(_)) => {}
        other => panic!(
            "expected a ShardMap rejection, got {other:?}",
            other = other.err()
        ),
    }
    deployment.shutdown();
}

#[test]
fn stale_clients_detect_republication_and_refresh_to_the_new_epoch() {
    let dataset = uniform_dataset(21, 1, 91);
    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0x91,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let mut client = deployment.client().expect("connect at epoch 0");
    assert_eq!(client.epoch(), 0);
    let query = Query::top_k(vec![0.6], 4);
    client.query_verified(&query).expect("epoch-0 query");

    // The owner republishes (here: one record's attributes change).
    let mut updated = dataset.clone();
    updated.records[3].attrs[0] = (updated.records[3].attrs[0] + 0.37) % 1.0;
    let updated = vaq_funcdb::Dataset::new(updated.records, updated.template, updated.domain);
    assert_eq!(deployment.republish(&updated).expect("republish"), 1);

    // The stale client's next pinned query is rejected with a typed
    // stale-epoch error — never answered quietly from the new dataset.
    let err = client.query_verified(&query).expect_err("stale pin");
    assert!(err.is_stale_epoch(), "expected stale-epoch, got {err}");

    // Re-fetching the signed map over the wire converges the client, and
    // its answers now match a fresh single server at the new epoch.
    assert_eq!(client.refresh().expect("refresh"), 1);
    assert_eq!(client.epoch(), 1);
    let merged = client.query_verified(&query).expect("epoch-1 query");
    let scheme = SignatureScheme::test_rsa(91);
    let single = vaq_authquery::Server::new(
        updated.clone(),
        vaq_authquery::IfmhTree::build_at_epoch(&updated, SigningMode::MultiSignature, &scheme, 1),
    );
    assert_eq!(merged.records, single.process(&query).records);
    deployment.shutdown();
}

#[test]
fn replayed_older_signed_map_is_rejected_everywhere() {
    let dataset = uniform_dataset(18, 1, 101);
    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xa1,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let old_publication = deployment.publication().clone();
    assert_eq!(deployment.republish(&dataset).unwrap(), 1);

    // Client side, over the wire: connecting with the replayed (honestly
    // signed, superseded) publication fails the per-connection epoch
    // handshake with a typed stale-epoch error.
    let err = ShardedClient::connect(deployment.addrs(), &old_publication)
        .expect_err("old publication must not connect");
    assert!(err.is_stale_epoch(), "expected stale-epoch, got {err}");

    // Client side, out of band: a converged client refuses to adopt the
    // replayed map — rollback is rejected with a typed error.
    let mut client = deployment.client().expect("connect at epoch 1");
    assert_eq!(client.epoch(), 1);
    match client.adopt_map(old_publication.shard_map.clone()) {
        Err(ServiceError::StaleEpoch { expected, got }) => {
            assert_eq!((expected, got), (1, 0));
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // A same-epoch re-offer is a harmless no-op; the client keeps working.
    assert_eq!(
        client
            .adopt_map(deployment.publication().shard_map.clone())
            .unwrap(),
        1
    );
    client
        .query_verified(&Query::top_k(vec![0.5], 3))
        .expect("client unaffected by rejected rollback");

    // Server side: a service that already publishes the epoch-1 map
    // refuses to publish the replayed epoch-0 map.
    let scheme = SignatureScheme::test_rsa(7);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let standalone = QueryService::bind(
        ServiceConfig::ephemeral(),
        Server::new(dataset.clone(), tree),
    )
    .unwrap();
    standalone
        .set_shard_map(deployment.publication().shard_map.clone())
        .expect("newer map accepted");
    match standalone.set_shard_map(old_publication.shard_map.clone()) {
        Err(ServiceError::StaleEpoch { expected, got }) => {
            assert_eq!((expected, got), (2, 0));
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    standalone.shutdown();
    deployment.shutdown();
}

#[test]
fn response_signed_under_a_superseded_epoch_is_rejected() {
    let dataset = uniform_dataset(16, 1, 111);
    let scheme = SignatureScheme::test_rsa(111);
    let query = Query::top_k(vec![0.7], 4);

    // An honest response from the epoch-0 publication...
    let old_server = Server::new(
        dataset.clone(),
        IfmhTree::build_at_epoch(&dataset, SigningMode::MultiSignature, &scheme, 0),
    );
    let replayed = old_server.process(&query);
    // ...verifies at its own epoch...
    vaq_authquery::verify_at_epoch(
        &query,
        &replayed.records,
        &replayed.vo,
        &dataset.template,
        &scheme.public_key(),
        0,
    )
    .expect("epoch-0 response verifies at epoch 0");
    // ...but a client that learned epoch 1 from the attested publication
    // rejects the replay with a typed error, because the replayed
    // signatures bind epoch 0.
    assert!(matches!(
        vaq_authquery::verify_at_epoch(
            &query,
            &replayed.records,
            &replayed.vo,
            &dataset.template,
            &scheme.public_key(),
            1,
        ),
        Err(vaq_authquery::VerifyError::SignatureMismatch)
    ));

    // Full stack: a service hot-swapped to epoch 1 stamps (and signs) its
    // answers at epoch 1, and a stale pin is refused with the typed remote
    // error rather than answered across epochs.
    let service = QueryService::bind(
        ServiceConfig::ephemeral(),
        Server::new(
            dataset.clone(),
            IfmhTree::build_at_epoch(&dataset, SigningMode::MultiSignature, &scheme, 0),
        ),
    )
    .unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    client.query_at(0, &query).expect("pin at epoch 0 serves");
    service
        .republish(Server::new(
            dataset.clone(),
            IfmhTree::build_at_epoch(&dataset, SigningMode::MultiSignature, &scheme, 1),
        ))
        .expect("hot swap to epoch 1");
    let err = client.query_at(0, &query).expect_err("stale pin refused");
    assert!(err.is_stale_epoch(), "expected stale-epoch, got {err}");
    let (epoch, fresh) = client.query_with_epoch(&query).expect("unpinned query");
    assert_eq!(epoch, 1);
    vaq_authquery::verify_at_epoch(
        &query,
        &fresh.records,
        &fresh.vo,
        &dataset.template,
        &scheme.public_key(),
        1,
    )
    .expect("epoch-1 response verifies at epoch 1");
    service.shutdown();
}

#[test]
fn standby_takes_over_a_killed_primary_mid_session() {
    let dataset = uniform_dataset(24, 1, 121);
    let mut deployment = ShardedDeployment::launch_with_standbys(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xb1,
        ServiceConfig::ephemeral().workers(2),
        1,
    )
    .unwrap();
    // The attested map lists two addresses per shard (primary + standby).
    for entry in &deployment.publication().shard_map.map.shards {
        assert_eq!(entry.addrs.len(), 2, "shard {}", entry.shard_id);
    }

    let (single, _) = single_server(&dataset, 121);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();
    let mut client = deployment.client().expect("connect to primaries");
    let query = Query::top_k(vec![0.45], 6);
    client.query_verified(&query).expect("healthy query");

    // Kill shard 1's primary under the connected client. The scatter leg
    // dies mid-query and is retried against the attested standby address —
    // the query completes fully verified, byte-identical to an unsharded
    // server, with no client-visible failure.
    deployment.stop_shard(1);
    for round in 0..5 {
        let merged = client
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("failover round {round}: {e}"));
        let expected = single_client.query(&query).unwrap();
        assert_eq!(merged.records, expected.records, "round {round}");
        let merged_bytes: Vec<Vec<u8>> = merged.records.iter().map(|r| r.to_wire_bytes()).collect();
        let expected_bytes: Vec<Vec<u8>> =
            expected.records.iter().map(|r| r.to_wire_bytes()).collect();
        assert_eq!(merged_bytes, expected_bytes, "round {round}");
    }

    // A fresh client connecting from the map also lands on the standby.
    let mut fresh =
        ShardedClient::connect_from_map(deployment.publication()).expect("connect via map");
    fresh.query_verified(&query).expect("fresh client query");

    single.shutdown();
    deployment.shutdown();
}

#[test]
fn republish_under_live_load_converges_and_survives_a_primary_kill() {
    // The acceptance scenario end to end: a sharded deployment with
    // standbys takes a live verified load while the owner republishes the
    // dataset *and* one primary is killed mid-run. Every client must
    // converge to the new epoch with zero verification failures, and the
    // final merged answers must be byte-identical to a fresh unsharded
    // server hosting the republished dataset at that epoch.
    let dataset = uniform_dataset(24, 1, 131);
    let mut updated = dataset.clone();
    for record in updated.records.iter_mut().take(8) {
        record.attrs[0] = (record.attrs[0] + 0.29) % 1.0;
    }
    let updated = vaq_funcdb::Dataset::new(updated.records, updated.template, updated.domain);

    let mut deployment = ShardedDeployment::launch_with_standbys(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xc1,
        ServiceConfig::ephemeral().workers(4),
        1,
    )
    .unwrap();

    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1),
        ..LoadGenerator::sharded(
            deployment.addrs().to_vec(),
            deployment.publication().clone(),
            3,
            30,
        )
    };
    let load = {
        let dataset = dataset.clone();
        std::thread::spawn(move || generator.run(&dataset))
    };

    // Republish mid-run, then kill a primary while the load keeps coming.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(deployment.republish(&updated).expect("live republish"), 1);
    std::thread::sleep(Duration::from_millis(100));
    deployment.stop_shard(0);

    let report = load
        .join()
        .expect("load thread")
        .expect("live-update load run completes");
    assert_eq!(report.total_requests, 90);
    assert_eq!(report.verified, 90, "every answer verified");
    assert_eq!(report.failures, 0, "zero verification failures");

    // Every client converged: a fresh map-connected client pins epoch 1,
    // and its merged answers are byte-identical to a fresh unsharded
    // server hosting the republished dataset at epoch 1.
    let mut converged =
        ShardedClient::connect_from_map(deployment.publication()).expect("post-churn connect");
    assert_eq!(converged.epoch(), 1);
    let scheme = SignatureScheme::test_rsa(131);
    let single = vaq_authquery::Server::new(
        updated.clone(),
        vaq_authquery::IfmhTree::build_at_epoch(&updated, SigningMode::MultiSignature, &scheme, 1),
    );
    for query in query_suite(&updated, 999) {
        let merged = converged
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("converged {query}: {e}"));
        let expected = single.process(&query);
        let merged_bytes: Vec<Vec<u8>> = merged.records.iter().map(|r| r.to_wire_bytes()).collect();
        let expected_bytes: Vec<Vec<u8>> =
            expected.records.iter().map(|r| r.to_wire_bytes()).collect();
        assert_eq!(
            merged_bytes, expected_bytes,
            "wire bytes diverge for {query}"
        );
    }
    deployment.shutdown();
}

#[test]
fn sharded_load_generator_verifies_a_full_run() {
    let dataset = uniform_dataset(20, 1, 67);
    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0x10ad,
        ServiceConfig::ephemeral().workers(4),
    )
    .unwrap();

    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1),
        ..LoadGenerator::sharded(
            deployment.addrs().to_vec(),
            deployment.publication().clone(),
            3,
            5,
        )
    };
    let report = generator.run(&dataset).expect("sharded load run");
    assert_eq!(report.total_requests, 15);
    assert_eq!(report.verified, 15, "every sharded answer is verified");
    assert_eq!(report.failures, 0);
    assert!(report.throughput_qps() > 0.0);

    for (shard_id, stats) in deployment.shutdown().into_iter().enumerate() {
        assert!(
            stats.requests_served >= 15,
            "shard {shard_id} saw {} requests, expected one per query",
            stats.requests_served
        );
    }
}

#[test]
fn signed_map_without_addresses_is_a_typed_error_not_a_panic() {
    // Regression for the vaq-lint panic-path sweep: a signed map is still
    // attacker-shaped input, and a map entry listing no usable serving
    // addresses used to be an unchecked assumption on the connect path.
    // It must surface as a typed ServiceError, never a panic.
    let dataset = uniform_dataset(9, 1, 77);
    let shards = partition_dataset(&dataset, SHARDS, PartitionStrategy::RoundRobin);
    let schemes: Vec<SignatureScheme> = (0..SHARDS)
        .map(|i| SignatureScheme::test_rsa(100 + i as u64))
        .collect();
    let keys: Vec<_> = schemes.iter().map(|s| s.public_key()).collect();
    let master = SignatureScheme::test_rsa(7);

    // Legitimately signed, verifies fine — but distributed "out of band",
    // so every entry's address list is empty.
    let signed = attest_shard_map(&shards, &keys, &master, 1, &[]);
    let publication = ShardedPublication {
        shard_map: signed,
        master_key: master.public_key(),
        template: dataset.template.clone(),
    };
    match ShardedClient::connect_from_map(&publication) {
        Err(ServiceError::ShardMap(reason)) => {
            assert!(reason.contains("no usable addresses"), "{reason}")
        }
        other => panic!(
            "expected a typed ShardMap error, got {other:?}",
            other = other.err()
        ),
    }
}
