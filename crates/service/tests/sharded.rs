//! End-to-end suite for the sharded deployment tier: a ≥3-shard deployment
//! over localhost TCP, every per-shard response cryptographically verified,
//! merged answers compared byte-for-byte against a single-server deployment
//! hosting the same logical dataset, and shard-outage behaviour.

use std::time::Duration;

use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_funcdb::Dataset;
use vaq_service::{
    LoadGenerator, QueryService, ServiceClient, ServiceConfig, ServiceError, ShardedClient,
    ShardedDeployment,
};
use vaq_wire::WireEncode;
use vaq_workload::{uniform_dataset, QueryGenerator, QueryMix};

const SHARDS: usize = 3;

/// A single-server deployment over the same logical dataset, for the
/// merged-equals-unsharded comparison.
fn single_server(dataset: &Dataset, seed: u64) -> (QueryService, SignatureScheme) {
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(dataset, SigningMode::MultiSignature, &scheme);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(2),
        Server::new(dataset.clone(), tree),
    )
    .expect("bind single-server service");
    (service, scheme)
}

/// Deterministic queries covering all three kinds, including edge cases
/// (k = 1, k beyond the dataset, empty and full ranges).
fn query_suite(dataset: &Dataset, seed: u64) -> Vec<Query> {
    let mut generator = QueryGenerator::new(dataset, seed);
    let mut queries: Vec<Query> = generator
        .mixed_batch(9, 3)
        .iter()
        .map(vaq_service::spec_to_query)
        .collect();
    let (lo, hi) = generator.score_range();
    queries.extend([
        Query::top_k(generator.weights(), 1),
        Query::top_k(generator.weights(), dataset.len()),
        Query::top_k(generator.weights(), dataset.len() + 10),
        Query::range(generator.weights(), lo - 2.0, hi + 2.0),
        Query::range(generator.weights(), hi + 1.0, hi + 2.0), // empty
        Query::knn(generator.weights(), 1, (lo + hi) / 2.0),
        Query::knn(generator.weights(), 7, hi),
        Query::knn(generator.weights(), dataset.len() + 3, lo),
    ]);
    queries
}

#[test]
fn sharded_answers_match_a_single_server_byte_for_byte() {
    let dataset = uniform_dataset(24, 1, 2026);
    let (single, _) = single_server(&dataset, 2026);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();

    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xdead,
        ServiceConfig::ephemeral().workers(2),
    )
    .expect("launch sharded deployment");
    assert_eq!(deployment.shard_count(), SHARDS);
    let mut sharded_client = deployment.client().expect("connect sharded client");

    for query in query_suite(&dataset, 555) {
        let merged = sharded_client
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("sharded {query}: {e}"));
        let single_response = single_client
            .query(&query)
            .unwrap_or_else(|e| panic!("single {query}: {e}"));

        assert_eq!(
            merged.records, single_response.records,
            "sharded answer diverges from the single server for {query}"
        );
        // Byte-identical, not just structurally equal: the canonical wire
        // encodings of the result lists must agree.
        let merged_bytes: Vec<Vec<u8>> = merged.records.iter().map(|r| r.to_wire_bytes()).collect();
        let single_bytes: Vec<Vec<u8>> = single_response
            .records
            .iter()
            .map(|r| r.to_wire_bytes())
            .collect();
        assert_eq!(merged_bytes, single_bytes, "wire bytes diverge for {query}");

        // The merged scores are ascending — the single server's result
        // order — and aligned with the records.
        assert_eq!(merged.scores.len(), merged.records.len());
        assert!(merged.scores.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(merged.per_shard_returned.len(), SHARDS);
    }

    // Every shard served queries (round-robin partitioning guarantees all
    // shards hold records, and every query scatters to all of them).
    let per_shard = sharded_client.stats_all().expect("stats from every shard");
    assert_eq!(per_shard.len(), SHARDS);
    for (shard_id, stats) in per_shard.iter().enumerate() {
        assert!(
            stats.requests_served > 0,
            "shard {shard_id} served no requests"
        );
    }

    single.shutdown();
    deployment.shutdown();
}

#[test]
fn sharded_deployment_works_in_two_dimensions() {
    let dataset = uniform_dataset(15, 2, 31);
    let (single, _) = single_server(&dataset, 31);
    let mut single_client = ServiceClient::connect(single.local_addr()).unwrap();

    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xbeef,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let mut sharded_client = deployment.client().unwrap();

    for query in query_suite(&dataset, 777).into_iter().take(9) {
        let merged = sharded_client
            .query_verified(&query)
            .unwrap_or_else(|e| panic!("sharded {query}: {e}"));
        let single_response = single_client.query(&query).unwrap();
        assert_eq!(merged.records, single_response.records, "{query}");
    }
    single.shutdown();
    deployment.shutdown();
}

#[test]
fn shard_outage_yields_a_typed_error_not_a_partial_answer() {
    let dataset = uniform_dataset(18, 1, 47);
    let mut deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xfeed,
        ServiceConfig::ephemeral(),
    )
    .unwrap();
    let mut client = deployment.client().unwrap();

    // Healthy deployment answers.
    let query = Query::top_k(vec![0.4], 5);
    let healthy = client.query_verified(&query).expect("healthy query");
    assert_eq!(healthy.records.len(), 5);

    // Take shard 1 down; the next query must fail with the typed per-shard
    // error naming that shard — never a silent 2-shard "answer".
    deployment.stop_shard(1);
    let mut failures = 0;
    for _ in 0..10 {
        match client.query_verified(&query) {
            Err(ServiceError::ShardFailed { shard_id, .. }) => {
                assert_eq!(shard_id, 1, "the downed shard must be named");
                failures += 1;
                break;
            }
            // The shard's ShuttingDown reply can race the socket close; a
            // retry settles onto the dead-connection path.
            Err(other) => panic!("expected ShardFailed, got {other}"),
            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    assert!(failures > 0, "a 2-of-3 deployment kept answering");

    // A fresh connect also fails against the downed shard.
    match ShardedClient::connect(deployment.addrs(), deployment.publication()) {
        Err(ServiceError::ShardFailed { shard_id, .. }) => assert_eq!(shard_id, 1),
        Err(other) => panic!("expected ShardFailed on connect, got {other}"),
        Ok(_) => panic!("connected to a deployment with a downed shard"),
    }
    deployment.shutdown();
}

#[test]
fn forged_or_mismatched_publications_are_rejected() {
    let dataset = uniform_dataset(12, 1, 53);
    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0xabcd,
        ServiceConfig::ephemeral(),
    )
    .unwrap();

    // Wrong master key: the shard map signature must not verify.
    let mut forged = deployment.publication().clone();
    forged.master_key = SignatureScheme::test_rsa(0x666).public_key();
    match ShardedClient::connect(deployment.addrs(), &forged) {
        Err(ServiceError::ShardMap(reason)) => {
            assert!(reason.contains("signature"), "{reason}")
        }
        other => panic!(
            "expected a ShardMap rejection, got {other:?}",
            other = other.err()
        ),
    }

    // Mis-wired addresses: shard 0's socket actually hosts shard 2, which
    // the per-connection handshake against the attested map catches.
    let mut swapped: Vec<_> = deployment.addrs().to_vec();
    swapped.reverse();
    match ShardedClient::connect(&swapped, deployment.publication()) {
        Err(ServiceError::ShardMap(reason)) => assert!(reason.contains("shard"), "{reason}"),
        other => panic!(
            "expected a handshake rejection, got {other:?}",
            other = other.err()
        ),
    }

    // Too few addresses for the attested shard count.
    match ShardedClient::connect(&deployment.addrs()[..SHARDS - 1], deployment.publication()) {
        Err(ServiceError::ShardMap(_)) => {}
        other => panic!(
            "expected a ShardMap rejection, got {other:?}",
            other = other.err()
        ),
    }
    deployment.shutdown();
}

#[test]
fn sharded_load_generator_verifies_a_full_run() {
    let dataset = uniform_dataset(20, 1, 67);
    let deployment = ShardedDeployment::launch(
        &dataset,
        SHARDS,
        SigningMode::MultiSignature,
        0x10ad,
        ServiceConfig::ephemeral().workers(4),
    )
    .unwrap();

    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1),
        ..LoadGenerator::sharded(
            deployment.addrs().to_vec(),
            deployment.publication().clone(),
            3,
            5,
        )
    };
    let report = generator.run(&dataset).expect("sharded load run");
    assert_eq!(report.total_requests, 15);
    assert_eq!(report.verified, 15, "every sharded answer is verified");
    assert_eq!(report.failures, 0);
    assert!(report.throughput_qps() > 0.0);

    for (shard_id, stats) in deployment.shutdown().into_iter().enumerate() {
        assert!(
            stats.requests_served >= 15,
            "shard {shard_id} saw {} requests, expected one per query",
            stats.requests_served
        );
    }
}
