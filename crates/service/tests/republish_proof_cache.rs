//! Regression test: a republication swaps the interior-proof cache
//! atomically with the epoch hot-swap. VO assembly on the hot path is
//! served from the cache, so a stale cache would surface as new-epoch
//! responses carrying old-epoch interior digests or signatures — which this
//! test detects because such a response cannot verify at its own envelope
//! epoch.

use vaq_authquery::{verify_at_epoch, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{SignatureScheme, Signer};
use vaq_service::{QueryService, ServiceClient, ServiceConfig};
use vaq_workload::uniform_dataset;

#[test]
fn republish_swaps_the_interior_proof_cache_with_the_epoch() {
    let dataset = uniform_dataset(30, 1, 99);
    let scheme = SignatureScheme::test_rsa(99);
    let verifier = scheme.verifier();
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        // The cache is embedded in the tree, so cache and epoch can only
        // travel together through the serving snapshot swap.
        let t0 = IfmhTree::build_at_epoch(&dataset, mode, &scheme, 0);
        assert_eq!(t0.proof_cache().epoch(), t0.epoch());
        let service =
            QueryService::bind(ServiceConfig::ephemeral(), Server::new(dataset.clone(), t0))
                .expect("bind");
        let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
        let query = Query::top_k(vec![0.5], 3);

        let (epoch, resp) = client.query_with_epoch(&query).expect("query at epoch 0");
        assert_eq!(epoch, 0);
        verify_at_epoch(
            &query,
            &resp.records,
            &resp.vo,
            &dataset.template,
            verifier.as_ref(),
            0,
        )
        .expect("pre-republish response verifies at epoch 0");

        let t1 = IfmhTree::build_at_epoch(&dataset, mode, &scheme, 1);
        assert_eq!(t1.proof_cache().epoch(), 1);
        service
            .republish(Server::new(dataset.clone(), t1))
            .expect("hot swap to epoch 1");

        // Post-swap, the served interior proof must be the new epoch's:
        // the response verifies at epoch 1 and at no other epoch.
        let (epoch, resp) = client.query_with_epoch(&query).expect("query at epoch 1");
        assert_eq!(epoch, 1, "{mode:?}: envelope stamp must advance");
        verify_at_epoch(
            &query,
            &resp.records,
            &resp.vo,
            &dataset.template,
            verifier.as_ref(),
            1,
        )
        .expect("new-epoch response must carry new-epoch cached proofs");
        assert!(
            verify_at_epoch(
                &query,
                &resp.records,
                &resp.vo,
                &dataset.template,
                verifier.as_ref(),
                0,
            )
            .is_err(),
            "{mode:?}: response after republish must not verify at the superseded epoch"
        );
        service.shutdown();
    }
}
