//! Integration tests for the evented multiplexed service core: tagged
//! request pipelining with out-of-order completion, connection shedding at
//! the configured limit, and typed mid-frame stall detection.

use std::io::Write;
use std::time::Duration;

use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_funcdb::Dataset;
use vaq_service::{QueryService, ServiceClient, ServiceConfig, ServiceError};
use vaq_wire::{ErrorCode, Request, Response, WireEncode};
use vaq_workload::uniform_dataset;

/// Owner-side setup: dataset, signed tree, scheme.
fn owner_setup(n: usize, dims: usize, seed: u64) -> (Dataset, Server, SignatureScheme) {
    let dataset = uniform_dataset(n, dims, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    (dataset, server, scheme)
}

#[test]
fn tagged_pipelining_reassociates_out_of_order_receives() {
    // N distinguishable queries (top-k with k = i + 1) go out back to back
    // on one connection; the responses are then collected in several
    // receive orders that disagree with the send order. Every response must
    // land with its own request — record count k is the witness.
    const N: usize = 12;
    let (_, server, _) = owner_setup(2 * N, 1, 4242);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(4), server).unwrap();
    let addr = service.local_addr();

    // A deterministic family of permutations of 0..N (7 and 5 are coprime
    // with 12): reverse order, strided orders, and identity.
    let orders: Vec<Vec<usize>> = vec![
        (0..N).rev().collect(),
        (0..N).map(|i| (i * 7) % N).collect(),
        (0..N).map(|i| (i * 5) % N).collect(),
        (0..N).collect(),
    ];
    for order in orders {
        let mut client = ServiceClient::connect(addr).unwrap();
        let tags: Vec<u64> = (0..N)
            .map(|i| {
                client
                    .send_tagged(&Request::Query(Query::top_k(vec![0.5], i + 1)))
                    .unwrap()
            })
            .collect();
        for &i in &order {
            let response = client.receive_tagged(tags[i]).unwrap();
            match response {
                Response::Query { response, .. } => assert_eq!(
                    response.records.len(),
                    i + 1,
                    "tag {} answered with the wrong response",
                    tags[i]
                ),
                other => panic!(
                    "expected a query response for tag {}, got {other:?}",
                    tags[i]
                ),
            }
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.requests_served, (4 * N) as u64);
}

#[test]
fn unknown_tag_is_a_typed_error_that_keeps_the_connection() {
    let (_, server, _) = owner_setup(10, 1, 7);
    let service = QueryService::bind(ServiceConfig::ephemeral(), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();

    // Asking for a tag that was never sent is a caller bug, reported
    // without touching (or desyncing) the stream.
    match client.receive_tagged(999).unwrap_err() {
        ServiceError::UnknownTag { tag } => assert_eq!(tag, 999),
        other => panic!("expected a typed unknown-tag error, got {other}"),
    }
    client.ping().unwrap();

    // A tag already collected is no longer pending either: the pairing
    // state refuses a double receive instead of stealing another tag's
    // frame.
    let tag = client.send_tagged(&Request::Ping).unwrap();
    assert!(matches!(client.receive_tagged(tag), Ok(Response::Pong)));
    match client.receive_tagged(tag).unwrap_err() {
        ServiceError::UnknownTag { tag: got } => assert_eq!(got, tag),
        other => panic!("expected a typed unknown-tag error, got {other}"),
    }
    client.ping().unwrap();
    service.shutdown();
}

#[test]
fn duplicate_in_flight_tag_gets_a_typed_reply_from_the_service() {
    // Two frames carrying the *same* correlation tag go out in one write: a
    // slow query and a ping. The service must answer the first and reject
    // the second with a tagged Malformed reply naming the collision — never
    // two responses under one tag.
    let (_, server, _) = owner_setup(24, 1, 77);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(2), server).unwrap();
    let mut stream = std::net::TcpStream::connect(service.local_addr()).unwrap();

    let slow = Request::Tagged {
        tag: 7,
        request: Box::new(Request::Query(Query::range(vec![0.5], -1.0, 2.0))),
    };
    let dup = Request::Tagged {
        tag: 7,
        request: Box::new(Request::Ping),
    };
    let mut bytes = slow.to_framed_bytes();
    bytes.extend_from_slice(&dup.to_framed_bytes());
    stream.write_all(&bytes).unwrap();

    let mut saw_answer = false;
    let mut saw_collision = false;
    for _ in 0..2 {
        let response = vaq_service::frame::read_message::<Response>(&mut stream, 1 << 20)
            .unwrap()
            .expect("service closed before answering both frames");
        match response {
            Response::Tagged { tag, response } => {
                assert_eq!(tag, 7);
                match *response {
                    Response::Error(reply) => {
                        assert_eq!(reply.code, ErrorCode::Malformed);
                        assert!(reply.message.contains("already in flight"), "{reply:?}");
                        saw_collision = true;
                    }
                    Response::Query { .. } => saw_answer = true,
                    other => panic!("unexpected tagged payload: {other:?}"),
                }
            }
            other => panic!("expected tagged replies, got {other:?}"),
        }
    }
    assert!(saw_answer && saw_collision);
    service.shutdown();
}

#[test]
fn shed_connections_get_a_typed_overloaded_reply() {
    // Regression: over the limit the accept loop used to drop the socket on
    // the floor — the client saw a bare EOF with no way to distinguish
    // overload from a crash. Now the connection is counted, answered with a
    // typed Overloaded reply, and closed.
    let (_, server, _) = owner_setup(10, 1, 33);
    let service =
        QueryService::bind(ServiceConfig::ephemeral().max_connections(1), server).unwrap();
    let addr = service.local_addr();

    let mut first = ServiceClient::connect(addr).unwrap();
    first.ping().unwrap(); // the slot is definitely taken once this answers

    // Read the shed reply without sending anything first: the service
    // writes Overloaded and closes immediately, so a request racing the
    // close could RST the unread reply away.
    let mut second = ServiceClient::connect(addr).unwrap();
    match second.receive().unwrap_err() {
        ServiceError::Remote(reply) => {
            assert_eq!(reply.code, ErrorCode::Overloaded);
            assert!(reply.message.contains("connection limit"), "{reply:?}");
        }
        other => panic!("expected a remote Overloaded reply, got {other}"),
    }
    // The shed connection is desynced (the service closed it); the
    // surviving connection is untouched.
    assert!(second.ping().is_err());
    first.ping().unwrap();

    assert_eq!(service.connections_shed(), 1);
    let deep = service.stats_deep();
    let overloaded = deep
        .snapshot
        .per_error
        .iter()
        .find(|e| e.code == ErrorCode::Overloaded.label())
        .map(|e| e.count)
        .unwrap_or(0);
    assert_eq!(overloaded, 1, "shed reply missing from per-error breakdown");

    // Freeing the slot makes room for a fresh connection.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = ServiceClient::connect(addr).unwrap();
        if retry.ping().is_ok() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after the first client disconnected"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    service.shutdown();
}

#[test]
fn mid_frame_stall_gets_a_typed_stalled_reply() {
    // Regression: a peer that died (or dribbled) mid-frame used to occupy
    // its connection silently until the blanket read timeout. Now a started
    // frame that stops making progress for `mid_frame_patience` is answered
    // with a typed Stalled reply, counted per error code, and closed.
    let (_, server, _) = owner_setup(10, 1, 55);
    let service = QueryService::bind(
        ServiceConfig::ephemeral()
            .mid_frame_patience(Duration::from_millis(50))
            .read_timeout(Some(Duration::from_secs(30))),
        server,
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(service.local_addr()).unwrap();
    // Half a header, then silence: the frame is started but never finishes.
    stream.write_all(&vaq_wire::MAGIC).unwrap();

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = vaq_service::frame::read_message::<Response>(&mut stream, 1 << 20)
        .unwrap()
        .expect("service closed without a stall reply");
    match reply {
        Response::Error(reply) => {
            assert_eq!(reply.code, ErrorCode::Stalled);
            assert!(reply.message.contains("reconnect"), "{reply:?}");
        }
        other => panic!("expected a Stalled error reply, got {other:?}"),
    }

    let deep = service.stats_deep();
    let stalled = deep
        .snapshot
        .per_error
        .iter()
        .find(|e| e.code == ErrorCode::Stalled.label())
        .map(|e| e.count)
        .unwrap_or(0);
    assert_eq!(stalled, 1, "stall missing from per-error breakdown");
    service.shutdown();
}

#[test]
fn loadgen_fan_out_simulates_many_connections_per_thread() {
    // The load generator's connection fan-out: 2 threads x 25 connections
    // round-robin 50 requests each, so every one of the 50 sockets carries
    // traffic while the service sweeps them all concurrently.
    let (dataset, server, scheme) = owner_setup(12, 1, 99);
    let service = QueryService::bind(ServiceConfig::ephemeral().workers(2), server).unwrap();
    let generator = vaq_service::LoadGenerator {
        connections_per_client: 25,
        ..vaq_service::LoadGenerator::new(
            service.local_addr(),
            2,
            50,
            dataset.template.clone(),
            scheme.public_key(),
        )
    };
    let report = generator.run(&dataset).unwrap();
    assert_eq!(report.failures, 0);
    assert!(report.total_requests >= 90, "{}", report.total_requests);
    let stats = service.shutdown();
    assert!(stats.requests_served >= 90);
}

#[test]
fn slow_reader_is_shed_with_a_typed_overloaded_reply() {
    // Regression for the write-queue byte budget (ROADMAP 2b): a peer whose
    // responses would overflow its per-connection budget is shed with a
    // typed Overloaded reply and counted, while other connections on the
    // same service keep working. The 300-record response is far larger than
    // the 4 KiB budget, so the very first completion triggers the shed —
    // deterministically, with no dependence on kernel socket buffering.
    let (_, server, _) = owner_setup(300, 2, 91);
    let service = QueryService::bind(
        ServiceConfig::ephemeral()
            .workers(2)
            .write_queue_budget_bytes(4096),
        server,
    )
    .unwrap();
    let addr = service.local_addr();

    let mut healthy = ServiceClient::connect(addr).unwrap();
    healthy.ping().unwrap();

    let mut slow = ServiceClient::connect(addr).unwrap();
    slow.send_tagged(&Request::Query(Query::top_k(vec![0.5, 0.5], 300)))
        .unwrap();
    match slow.receive().unwrap_err() {
        ServiceError::Remote(reply) => {
            assert_eq!(reply.code, ErrorCode::Overloaded);
            assert!(reply.message.contains("write-queue"), "{reply:?}");
        }
        other => panic!("expected a remote Overloaded reply, got {other}"),
    }
    // The shed connection is closed after the goodbye; the healthy one is
    // untouched and the shed is accounted in the deep stats.
    assert!(slow.ping().is_err());
    healthy.ping().unwrap();
    assert_eq!(service.slow_readers_shed(), 1);
    let deep = service.stats_deep();
    assert_eq!(deep.reactor.slow_readers_shed, 1);
    let overloaded = deep
        .snapshot
        .per_error
        .iter()
        .find(|e| e.code == ErrorCode::Overloaded.label())
        .map(|e| e.count)
        .unwrap_or(0);
    assert_eq!(overloaded, 1, "shed reply missing from per-error breakdown");
    service.shutdown();
}

#[test]
fn sweep_watchdog_feeds_the_deep_stats_over_the_wire() {
    // A zero stall threshold counts every sweep as a stall, making the
    // watchdog plumbing observable without manufacturing a real stall.
    let (_, server, _) = owner_setup(10, 1, 5);
    let service =
        QueryService::bind(ServiceConfig::ephemeral().reactor_stall_micros(0), server).unwrap();
    let mut client = ServiceClient::connect(service.local_addr()).unwrap();
    client.ping().unwrap();

    let deep = client.stats_deep().unwrap();
    assert!(deep.reactor.sweeps.count > 0, "sweep histogram never fed");
    assert!(deep.reactor.reactor_stalls > 0, "zero threshold must tick");
    assert!(
        deep.reactor.reactor_stalls <= deep.reactor.sweeps.count,
        "stalls cannot outnumber sweeps: {:?}",
        deep.reactor
    );
    assert_eq!(deep.reactor.slow_readers_shed, 0);
    assert!(service.reactor_stalls() > 0);
    service.shutdown();
}
