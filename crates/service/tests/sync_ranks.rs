//! Keeps the static and runtime halves of the lock-rank scheme in sync:
//! `crates/lint/lock_ranks.toml` (read by the vaq-lint lock-order pass) and
//! `vaq_service::sync::rank` (asserted by OrderedMutex under debug builds)
//! must describe the same ordering, or one checker silently diverges from
//! the other.

use std::collections::BTreeMap;
use std::path::Path;

use vaq_service::sync::rank;

fn manifest() -> BTreeMap<String, u32> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../lint/lock_ranks.toml");
    let text = std::fs::read_to_string(&path).expect("lock_ranks.toml is checked in");
    let mut ranks = BTreeMap::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .expect("manifest lines are `name = rank`");
        let rank: u32 = value.trim().parse().expect("rank is a u32");
        assert!(
            ranks.insert(name.trim().to_string(), rank).is_none(),
            "duplicate manifest entry for '{}'",
            name.trim()
        );
    }
    ranks
}

#[test]
fn manifest_matches_runtime_rank_constants() {
    let ranks = manifest();
    let expected = [
        ("receiver", rank::RECEIVER),
        ("serving", rank::SERVING),
        ("shard_map", rank::SHARD_MAP),
        ("cache", rank::CACHE),
        ("slots", rank::SLOTS),
        ("result", rank::RESULT),
        ("buffer", rank::BUFFER),
    ];
    for (name, runtime_rank) in expected {
        assert_eq!(
            ranks.get(name).copied(),
            Some(runtime_rank),
            "manifest entry '{name}' must equal vaq_service::sync::rank"
        );
    }
    // `done` is a condvar paired with the `result` mutex; waiting releases
    // and re-acquires `result`, so their ranks must be identical.
    assert_eq!(ranks.get("done"), ranks.get("result"));
    // The reactor-safe ceiling (read by the reactor-discipline lint pass)
    // must match its runtime constant.
    assert_eq!(
        ranks.get("reactor_safe_ceiling").copied(),
        Some(rank::REACTOR_SAFE_CEILING),
        "manifest `reactor_safe_ceiling` must equal rank::REACTOR_SAFE_CEILING"
    );
    // No manifest entries beyond the runtime set (7 mutexes + 1 condvar +
    // the reactor-safe ceiling).
    assert_eq!(
        ranks.len(),
        9,
        "unexpected extra manifest entries: {ranks:?}"
    );
}

#[test]
fn ranks_are_strictly_ordered_along_the_nesting_chain() {
    // The deepest legal nesting chain in vaq-service; strictly increasing
    // ranks are what make the lock graph acyclic.
    let chain = [
        rank::RECEIVER,
        rank::SERVING,
        rank::SHARD_MAP,
        rank::CACHE,
        rank::SLOTS,
        rank::RESULT,
        rank::BUFFER,
    ];
    for pair in chain.windows(2) {
        assert!(pair[0] < pair[1], "ranks must strictly increase: {chain:?}");
    }
}
