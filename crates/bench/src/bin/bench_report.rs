//! Persisted benchmark-artifact pipeline for the networked service tier.
//!
//! Runs the service benchmark scenarios end to end — a single service, the
//! sharded tier at S = 1..8, a batched workload and a republish-churn run —
//! collects throughput, latency quantiles, per-stage breakdowns and cache
//! hit rates from the services' deep stats, and writes one schema-versioned
//! JSON artifact so successive PRs can be compared number for number.
//!
//! ```text
//! cargo run --release -p vaq-bench --bin bench_report
//! cargo run --release -p vaq-bench --bin bench_report -- --smoke --out target/bench_smoke.json
//! ```
//!
//! The binary validates its own output against the required schema fields
//! and exits nonzero when any is missing, which is what CI runs (with
//! `--smoke`) to keep the artifact schema from drifting silently.

use std::time::Duration;

use serde::Serialize;
use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_funcdb::Dataset;
use vaq_service::{
    LoadGenerator, LoadReport, QueryService, ServiceClient, ServiceConfig, ServiceError,
    ShardedDeployment,
};
use vaq_wire::{ErrorCode, Request, StatsDeep};
use vaq_workload::{uniform_dataset, QueryMix};

/// Version stamp of the artifact layout; bump when fields change shape.
/// v2 adds the reactor-health columns (sweep stats, stalls, shed counters)
/// and the `slow_reader` scenario. v3 adds the `crypto_microbench` section:
/// old-vs-new timings for the hot-path crypto rework (Montgomery `mod_pow`,
/// pooled DSA signing, fixed-base verify, block-batched SHA-256).
const SCHEMA_VERSION: u32 = 3;

/// Substrings every valid artifact must contain: the schema self-check CI
/// runs. Field names only — values vary run to run.
const REQUIRED_FIELDS: &[&str] = &[
    "\"schema_version\"",
    "\"benchmark\"",
    "\"mode\"",
    "\"seed\"",
    "\"scenarios\"",
    "\"name\"",
    "\"shards\"",
    "\"clients\"",
    "\"requests\"",
    "\"queries\"",
    "\"qps\"",
    "\"p50_micros\"",
    "\"p99_micros\"",
    "\"max_micros\"",
    "\"verified\"",
    "\"failures\"",
    "\"epoch_refreshes\"",
    "\"failovers\"",
    "\"stale_rejections\"",
    "\"scatter_leg_mean_micros\"",
    "\"cache_hits\"",
    "\"cache_misses\"",
    "\"cache_hit_rate\"",
    "\"cache_evictions\"",
    "\"requests_served\"",
    "\"errors\"",
    "\"stages\"",
    "\"stage\"",
    "\"count\"",
    "\"sum_micros\"",
    "\"mean_micros\"",
    "\"connections\"",
    "\"sweep_count\"",
    "\"sweep_mean_micros\"",
    "\"sweep_max_micros\"",
    "\"reactor_stalls\"",
    "\"slow_readers_shed\"",
    "\"connections_shed\"",
    "\"single\"",
    "\"sharded_s1\"",
    "\"sharded_s4\"",
    "\"sharded_s8\"",
    "\"batched\"",
    "\"multiplexed\"",
    "\"republish_churn\"",
    "\"slow_reader\"",
    "\"crypto_microbench\"",
    "\"ops\"",
    "\"old_ns_per_op\"",
    "\"new_ns_per_op\"",
    "\"speedup\"",
    "\"mod_pow\"",
    "\"dsa_sign\"",
    "\"dsa_verify\"",
    "\"sha256_pair\"",
];

/// One hot-path stage's aggregate across every service in a scenario.
#[derive(Serialize)]
struct StageRow {
    stage: String,
    count: u64,
    sum_micros: u64,
    max_micros: u64,
    mean_micros: f64,
}

/// One scenario's results: load-side throughput/latency plus the service
/// side's deep-stat breakdowns.
#[derive(Serialize)]
struct ScenarioRow {
    name: String,
    shards: usize,
    clients: usize,
    /// Concurrent TCP connections the scenario held against the tier (load
    /// threads times their connection fan-out, or threads times shards).
    connections: usize,
    requests: usize,
    queries: usize,
    qps: f64,
    p50_micros: u64,
    p99_micros: u64,
    max_micros: u64,
    batches: usize,
    batch_p50_micros: u64,
    batch_p99_micros: u64,
    verified: usize,
    failures: usize,
    epoch_refreshes: usize,
    failovers: u64,
    stale_rejections: u64,
    scatter_leg_mean_micros: u64,
    scatter_leg_max_micros: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    cache_evictions: u64,
    requests_served: u64,
    errors: u64,
    /// Reactor-thread health, summed across the scenario's services: total
    /// readiness sweeps with their mean/max duration, sweeps past the stall
    /// threshold, and both shed counters (write-queue budget, connection
    /// limit).
    sweep_count: u64,
    sweep_mean_micros: f64,
    sweep_max_micros: u64,
    reactor_stalls: u64,
    slow_readers_shed: u64,
    connections_shed: u64,
    stages: Vec<StageRow>,
}

/// The whole artifact.
#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    benchmark: String,
    mode: String,
    seed: u64,
    /// Old-vs-new timings for the hot-path crypto rework (schema v3).
    crypto_microbench: Vec<vaq_bench::crypto_microbench::MicrobenchRow>,
    scenarios: Vec<ScenarioRow>,
}

struct Args {
    smoke: bool,
    out: String,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: "BENCH_PR10.json".to_string(),
        seed: 0xbe7c,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(0xbe7c);
            }
            "--help" | "-h" => {
                println!("usage: bench_report [--smoke] [--out PATH] [--seed N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Run sizing: kept deliberately small — the artifact's value is the stage
/// breakdowns and relative numbers, not absolute load.
struct Sizing {
    records: usize,
    clients: usize,
    requests_per_client: usize,
    republishes: usize,
    /// Connections per load thread in the `multiplexed` scenario: the
    /// evented core's headline number. Full mode holds
    /// `clients * mux_fan_out` (≥ 5k) sockets from one process.
    mux_fan_out: usize,
    /// Flooding connections in the `slow_reader` scenario.
    slow_readers: usize,
    /// Record count for the `slow_reader` scenario's own dataset — sized so
    /// each response is tens of kilobytes and the floods overrun the
    /// write-queue budget within a few hundred requests.
    slow_records: usize,
}

impl Sizing {
    fn new(smoke: bool) -> Self {
        if smoke {
            Sizing {
                records: 12,
                clients: 2,
                requests_per_client: 3,
                republishes: 1,
                mux_fan_out: 8,
                slow_readers: 1,
                slow_records: 160,
            }
        } else {
            Sizing {
                records: 20,
                clients: 4,
                requests_per_client: 12,
                republishes: 3,
                mux_fan_out: 1280,
                slow_readers: 2,
                slow_records: 300,
            }
        }
    }
}

/// Sums per-service deep stats into one per-scenario stage table plus the
/// cache and error aggregates.
fn fold_deep(
    name: &str,
    shards: usize,
    connections: usize,
    report: &LoadReport,
    deep: &[StatsDeep],
) -> ScenarioRow {
    let mut stages: Vec<StageRow> = Vec::new();
    for service in deep {
        for (i, stage) in service.per_stage.iter().enumerate() {
            if stages.len() <= i {
                stages.push(StageRow {
                    stage: stage.stage.clone(),
                    count: 0,
                    sum_micros: 0,
                    max_micros: 0,
                    mean_micros: 0.0,
                });
            }
            let row = &mut stages[i];
            row.count += stage.histogram.count;
            row.sum_micros += stage.histogram.sum_micros;
            row.max_micros = row.max_micros.max(stage.histogram.max_micros);
        }
    }
    for row in &mut stages {
        row.mean_micros = if row.count == 0 {
            0.0
        } else {
            row.sum_micros as f64 / row.count as f64
        };
    }
    let sweep_count: u64 = deep.iter().map(|d| d.reactor.sweeps.count).sum();
    let sweep_sum_micros: u64 = deep.iter().map(|d| d.reactor.sweeps.sum_micros).sum();
    let cache_hits: u64 = deep.iter().map(|d| d.snapshot.cache_hits).sum();
    let cache_misses: u64 = deep.iter().map(|d| d.snapshot.cache_misses).sum();
    let probes = cache_hits + cache_misses;
    ScenarioRow {
        name: name.to_string(),
        shards,
        clients: report.clients,
        connections,
        requests: report.total_requests,
        queries: report.total_queries(),
        qps: report.throughput_qps(),
        p50_micros: report.latency_quantile_micros(0.50),
        p99_micros: report.latency_quantile_micros(0.99),
        max_micros: report.latency_quantile_micros(1.0),
        batches: report.batches,
        batch_p50_micros: report.batch_latency_quantile_micros(0.50),
        batch_p99_micros: report.batch_latency_quantile_micros(0.99),
        verified: report.verified,
        failures: report.failures,
        epoch_refreshes: report.epoch_refreshes,
        failovers: report.failovers,
        stale_rejections: report.stale_rejections,
        scatter_leg_mean_micros: report.scatter_leg_mean_micros(),
        scatter_leg_max_micros: report.scatter_leg_max_micros,
        cache_hits,
        cache_misses,
        cache_hit_rate: if probes == 0 {
            0.0
        } else {
            cache_hits as f64 / probes as f64
        },
        cache_evictions: deep.iter().map(|d| d.snapshot.cache_evictions).sum(),
        requests_served: deep.iter().map(|d| d.snapshot.requests_served).sum(),
        errors: deep.iter().map(|d| d.snapshot.errors).sum(),
        sweep_count,
        sweep_mean_micros: if sweep_count == 0 {
            0.0
        } else {
            sweep_sum_micros as f64 / sweep_count as f64
        },
        sweep_max_micros: deep
            .iter()
            .map(|d| d.reactor.sweeps.max_micros)
            .max()
            .unwrap_or(0),
        reactor_stalls: deep.iter().map(|d| d.reactor.reactor_stalls).sum(),
        slow_readers_shed: deep.iter().map(|d| d.reactor.slow_readers_shed).sum(),
        connections_shed: deep.iter().map(|d| d.reactor.connections_shed).sum(),
        stages,
    }
}

/// One single-service run under `mix`, returning the load report and the
/// service's deep stats scraped after the load drained.
fn run_single(
    name: &str,
    dataset: &Dataset,
    sizing: &Sizing,
    seed: u64,
    mix: QueryMix,
) -> ScenarioRow {
    run_single_fanned(
        name,
        dataset,
        sizing,
        seed,
        mix,
        1,
        sizing.requests_per_client,
    )
}

/// A single-service run with a per-thread connection fan-out: the
/// `multiplexed` scenario drives thousands of concurrent sockets through
/// the evented core from a handful of load threads.
fn run_single_fanned(
    name: &str,
    dataset: &Dataset,
    sizing: &Sizing,
    seed: u64,
    mix: QueryMix,
    fan_out: usize,
    requests_per_client: usize,
) -> ScenarioRow {
    let connections = sizing.clients * fan_out;
    let mut config = ServiceConfig::ephemeral()
        .workers(sizing.clients)
        // The warmup pass's sockets may still be draining while the
        // measured pass connects its own full fleet; leave headroom so
        // the limit never sheds a bench connection.
        .max_connections((3 * connections).max(10_000));
    if fan_out > 1 {
        // A fanned-out fleet is mostly idle by construction: each socket
        // waits out the rest of its wave between requests. Give those
        // simulated users a longer idle budget than the 30s default so the
        // service never reaps a socket the load generator still holds, and
        // size the cache so the warm pass actually replays into hits.
        config = config
            .read_timeout(Some(Duration::from_secs(300)))
            .cache_capacity(2 * connections);
    }
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(dataset, SigningMode::MultiSignature, &scheme);
    let service =
        QueryService::bind(config, Server::new(dataset.clone(), tree)).expect("bind service");
    let mut generator = LoadGenerator::new(
        service.local_addr(),
        sizing.clients,
        requests_per_client,
        dataset.template.clone(),
        scheme.public_key(),
    );
    generator.connections_per_client = fan_out;
    generator.mix = mix;
    generator.seed = seed;
    // Warmup pass, then an identical measured pass: the seeded streams
    // repeat exactly, so the measured pass runs against a warm cache and
    // the artifact's hit rate reflects steady-state serving.
    generator.run(dataset).expect("warmup run");
    let report = generator.run(dataset).expect("load run");
    let deep = ServiceClient::connect(service.local_addr())
        .and_then(|mut c| c.stats_deep())
        .expect("deep stats scrape");
    service.shutdown();
    fold_deep(name, 1, connections, &report, &[deep])
}

/// One sharded run at `shards` shards, deep stats folded across the fleet.
fn run_sharded(
    name: &str,
    dataset: &Dataset,
    sizing: &Sizing,
    seed: u64,
    shards: usize,
) -> ScenarioRow {
    let deployment = ShardedDeployment::launch(
        dataset,
        shards,
        SigningMode::MultiSignature,
        seed,
        // Each load client holds one connection per shard, and epoch
        // refreshes open extra short-lived ones; size the pool so the
        // bounded accept queue never sheds a client mid-run.
        ServiceConfig::ephemeral().workers(sizing.clients + 2),
    )
    .expect("launch sharded deployment");
    let mut generator = LoadGenerator::sharded(
        deployment.addrs().to_vec(),
        deployment.publication().clone(),
        sizing.clients,
        sizing.requests_per_client,
    );
    generator.seed = seed;
    // Same warm-cache protocol as the single-service scenarios.
    generator.run(dataset).expect("warmup run");
    let report = generator.run(dataset).expect("sharded load run");
    let deep = deployment.stats_deep();
    deployment.shutdown();
    fold_deep(name, shards, sizing.clients * shards, &report, &deep)
}

/// A sharded run with the owner republishing mid-load: clients ride the
/// rollout through typed stale-epoch rejections and signed-map refreshes,
/// all of which land in the artifact.
fn run_republish_churn(dataset: &Dataset, sizing: &Sizing, seed: u64) -> ScenarioRow {
    let mut deployment = ShardedDeployment::launch(
        dataset,
        2,
        SigningMode::MultiSignature,
        seed,
        // Republish-driven refreshes reconnect every client to every
        // shard while the old connections are still draining; an
        // undersized pool sheds those reconnects and aborts the run.
        ServiceConfig::ephemeral().workers(sizing.clients + 2),
    )
    .expect("launch sharded deployment");
    // Run a longer load than the steady-state scenarios so the mid-run
    // republishes land while clients are still in flight — otherwise the
    // artifact's stale-rejection and refresh counters are trivially zero.
    let mut generator = LoadGenerator::sharded(
        deployment.addrs().to_vec(),
        deployment.publication().clone(),
        sizing.clients,
        sizing.requests_per_client * 4,
    );
    generator.seed = seed;
    let load_dataset = dataset.clone();
    let load = std::thread::spawn(move || generator.run(&load_dataset).expect("churn load run"));
    for _ in 0..sizing.republishes {
        std::thread::sleep(Duration::from_millis(10));
        deployment.republish(dataset).expect("live republish");
    }
    let report = load.join().expect("load thread");
    let deep = deployment.stats_deep();
    deployment.shutdown();
    fold_deep("republish_churn", 2, sizing.clients * 2, &report, &deep)
}

/// Slow-reader shedding under the per-connection write-queue byte budget.
///
/// A handful of connections pipeline the same large query and never read
/// their responses, so queued-but-unflushed bytes climb until the service
/// sheds each flooder with a typed `Overloaded` goodbye. A normal load run
/// against the same service afterwards must verify every answer — the shed
/// is surgical, not collateral. The kernel's socket buffers absorb an
/// unknown amount before the userspace queue grows, so the flood loop
/// observes the shed counter rather than computing a request count.
fn run_slow_reader(sizing: &Sizing, seed: u64) -> ScenarioRow {
    /// Deliberately small budget so the floods trip it quickly; the
    /// shipping default is three orders of magnitude larger.
    const BUDGET_BYTES: usize = 64 << 10;
    /// Hard cap on requests per flooder — the loop normally exits on the
    /// shed counter long before this.
    const FLOOD_CAP: usize = 4000;

    let dataset = uniform_dataset(sizing.slow_records, 1, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let config = ServiceConfig::ephemeral()
        .workers(sizing.clients)
        .write_queue_budget_bytes(BUDGET_BYTES);
    let service =
        QueryService::bind(config, Server::new(dataset.clone(), tree)).expect("bind service");
    let addr = service.local_addr();

    let shed_target = sizing.slow_readers as u64;
    let request = Request::Query(Query::top_k(vec![0.5], sizing.slow_records));
    let mut typed_goodbyes = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sizing.slow_readers)
            .map(|_| {
                let (service, request) = (&service, &request);
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("slow reader connects");
                    let mut sent = 0;
                    while sent < FLOOD_CAP && service.slow_readers_shed() < shed_target {
                        if client.send_tagged(request).is_err() {
                            break;
                        }
                        sent += 1;
                    }
                    client
                })
            })
            .collect();
        // Read each flooded socket back: responses flushed before the shed
        // arrive whole, then the typed goodbye.
        for handle in handles {
            let mut client = handle.join().expect("slow reader thread");
            client
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            loop {
                match client.receive() {
                    Ok(_) => continue,
                    Err(ServiceError::Remote(reply)) => {
                        if reply.code == ErrorCode::Overloaded {
                            typed_goodbyes += 1;
                        }
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
    });

    // Healthy pass: same warm-cache protocol as the other scenarios, on the
    // service that just shed the floods.
    let mut generator = LoadGenerator::new(
        addr,
        sizing.clients,
        sizing.requests_per_client,
        dataset.template.clone(),
        scheme.public_key(),
    );
    generator.seed = seed;
    generator.run(&dataset).expect("warmup run");
    let report = generator.run(&dataset).expect("healthy load run");
    let deep = ServiceClient::connect(addr)
        .and_then(|mut c| c.stats_deep())
        .expect("deep stats scrape");
    service.shutdown();

    if report.failures != 0 {
        eprintln!(
            "bench_report: slow_reader healthy pass had {} failures",
            report.failures
        );
        std::process::exit(1);
    }
    if deep.reactor.slow_readers_shed == 0 || typed_goodbyes == 0 {
        eprintln!(
            "bench_report: slow_reader scenario never shed (counter {}, typed goodbyes {})",
            deep.reactor.slow_readers_shed, typed_goodbyes
        );
        std::process::exit(1);
    }
    fold_deep(
        "slow_reader",
        1,
        sizing.clients + sizing.slow_readers,
        &report,
        &[deep],
    )
}

fn main() {
    let args = parse_args();
    let sizing = Sizing::new(args.smoke);
    let dataset = uniform_dataset(sizing.records, 1, args.seed);

    eprintln!("bench_report: crypto microbenchmarks");
    let crypto_microbench = vaq_bench::crypto_microbench::run(args.smoke, args.seed);
    for row in &crypto_microbench {
        eprintln!(
            "  {:>12}: old {:>10.0} ns/op, new {:>10.0} ns/op ({:.2}x)",
            row.name, row.old_ns_per_op, row.new_ns_per_op, row.speedup
        );
    }

    eprintln!("bench_report: single service");
    let mut scenarios = vec![run_single(
        "single",
        &dataset,
        &sizing,
        args.seed,
        QueryMix::default(),
    )];
    for shards in 1..=8 {
        eprintln!("bench_report: sharded S={shards}");
        scenarios.push(run_sharded(
            &format!("sharded_s{shards}"),
            &dataset,
            &sizing,
            args.seed + shards as u64,
            shards,
        ));
    }
    eprintln!("bench_report: batched workload");
    scenarios.push(run_single(
        "batched",
        &dataset,
        &sizing,
        args.seed + 10,
        QueryMix::default().with_batches(1, 2, 4),
    ));
    eprintln!(
        "bench_report: multiplexed ({} connections)",
        sizing.clients * sizing.mux_fan_out
    );
    scenarios.push(run_single_fanned(
        "multiplexed",
        &dataset,
        &sizing,
        args.seed + 15,
        QueryMix::default(),
        sizing.mux_fan_out,
        // One request per simulated user per pass: every socket in the
        // fan-out carries traffic in both the warmup and the measured run.
        sizing.mux_fan_out,
    ));
    eprintln!("bench_report: republish churn");
    scenarios.push(run_republish_churn(&dataset, &sizing, args.seed + 20));
    eprintln!(
        "bench_report: slow reader shedding ({} flooders)",
        sizing.slow_readers
    );
    scenarios.push(run_slow_reader(&sizing, args.seed + 25));

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        benchmark: "vaq_service_bench_report".to_string(),
        mode: if args.smoke { "smoke" } else { "full" }.to_string(),
        seed: args.seed,
        crypto_microbench,
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize artifact");

    // Self-check: the artifact must speak the full schema (the compat JSON
    // layer is serialize-only, so the check is by field-name substring).
    let missing: Vec<&&str> = REQUIRED_FIELDS
        .iter()
        .filter(|field| !json.contains(**field))
        .collect();
    if !missing.is_empty() {
        eprintln!("bench_report: artifact is missing required schema fields: {missing:?}");
        std::process::exit(1);
    }

    std::fs::write(&args.out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("bench_report: cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    for scenario in &report.scenarios {
        eprintln!(
            "  {:>16}: {:>8.0} qps, p50 {:>6}us, p99 {:>6}us, hit rate {:.2}",
            scenario.name,
            scenario.qps,
            scenario.p50_micros,
            scenario.p99_micros,
            scenario.cache_hit_rate
        );
    }
    eprintln!(
        "bench_report: wrote {} ({} scenarios)",
        args.out,
        report.scenarios.len()
    );
}
