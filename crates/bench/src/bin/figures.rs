//! Regenerates the paper's evaluation figures as plain-text tables.
//!
//! ```text
//! cargo run --release -p vaq-bench --bin figures -- --fig all
//! cargo run --release -p vaq-bench --bin figures -- --fig 5a --json
//! cargo run --release -p vaq-bench --bin figures -- --fig 7d --scale small
//! ```
//!
//! Figure ids: 5a 5b 5c 6a 6b 6c 6d 7a 7b 7c 7d 8a 8b ablation all

use vaq_bench::report::{fmt_ms, print_table, to_json};
use vaq_bench::{
    ablation_split_oracle, fig5_owner, fig6_server_vs_n, fig6d_server_vs_result_len, fig7_user,
    fig7c_rsa_vs_dsa, fig8a_vo_size_vs_result_len, fig8b_vo_size_vs_n, Scale, ServerQueryKind,
    DEFAULT_SEED,
};

struct Args {
    fig: String,
    scale: Scale,
    json: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        fig: "all".to_string(),
        scale: Scale::Small,
        json: false,
        seed: DEFAULT_SEED,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fig" => {
                i += 1;
                args.fig = argv.get(i).cloned().unwrap_or_else(|| "all".into());
            }
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("paper") => Scale::Paper,
                    _ => Scale::Small,
                };
            }
            "--seed" => {
                i += 1;
                args.seed = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_SEED);
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig 5a|5b|5c|6a|6b|6c|6d|7a|7b|7c|7d|8a|8b|ablation|all] \
                     [--scale small|paper] [--seed N] [--json]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn wants(fig: &str, id: &str) -> bool {
    fig == "all" || fig == id || (id.len() == 2 && fig == &id[..1])
}

fn main() {
    let args = parse_args();
    let fig = args.fig.as_str();
    let scale = args.scale;
    let seed = args.seed;

    println!("# Verifying the Correctness of Analytic Query Results — figure reproduction");
    println!("# scale = {scale:?}, seed = {seed}");

    // ---- Fig. 5 -----------------------------------------------------------
    if wants(fig, "5a") || wants(fig, "5b") || wants(fig, "5c") {
        let rows = fig5_owner(scale, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            if wants(fig, "5a") {
                print_table(
                    "Fig. 5a — signatures needed to create the structure",
                    &["n", "subdomains", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.n.to_string(),
                                r.subdomains.to_string(),
                                r.one_sig_signatures.to_string(),
                                r.multi_sig_signatures.to_string(),
                                r.mesh_signatures.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
            if wants(fig, "5b") {
                print_table(
                    "Fig. 5b — construction time (ms)",
                    &["n", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.n.to_string(),
                                fmt_ms(r.one_sig_build_ms),
                                fmt_ms(r.multi_sig_build_ms),
                                fmt_ms(r.mesh_build_ms),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
            if wants(fig, "5c") {
                print_table(
                    "Fig. 5c — structure size (bytes)",
                    &["n", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.n.to_string(),
                                r.one_sig_bytes.to_string(),
                                r.multi_sig_bytes.to_string(),
                                r.mesh_bytes.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
        }
    }

    // ---- Fig. 6a-c --------------------------------------------------------
    let fig6_cases = [
        ("6a", ServerQueryKind::Top3),
        ("6b", ServerQueryKind::Knn3),
        ("6c", ServerQueryKind::Range3),
    ];
    for (id, kind) in fig6_cases {
        if wants(fig, id) {
            let rows = fig6_server_vs_n(scale, kind, 5, seed);
            if args.json {
                println!("{}", to_json(&rows));
            } else {
                print_table(
                    &format!(
                        "Fig. {id} — server nodes/cells traversed, {} queries",
                        kind.label()
                    ),
                    &["n", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.n.to_string(),
                                format!("{:.1}", r.one_sig_nodes),
                                format!("{:.1}", r.multi_sig_nodes),
                                format!("{:.1}", r.mesh_nodes),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
        }
    }

    // ---- Fig. 6d ----------------------------------------------------------
    if wants(fig, "6d") {
        let rows = fig6d_server_vs_result_len(scale, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            print_table(
                "Fig. 6d — server nodes traversed vs result length",
                &["|q|", "one-sig", "multi-sig", "sig-mesh"],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.result_len.to_string(),
                            r.one_sig_nodes.to_string(),
                            r.multi_sig_nodes.to_string(),
                            r.mesh_nodes.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }

    // ---- Fig. 7a/7b/7d ----------------------------------------------------
    if wants(fig, "7a") || wants(fig, "7b") || wants(fig, "7d") {
        let rows = fig7_user(scale, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            if wants(fig, "7a") {
                print_table(
                    "Fig. 7a — hash operations during verification",
                    &["|q|", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.result_len.to_string(),
                                r.one_sig_hash_ops.to_string(),
                                r.multi_sig_hash_ops.to_string(),
                                r.mesh_hash_ops.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
            if wants(fig, "7b") {
                print_table(
                    "Fig. 7b — hashing time during verification (ms)",
                    &["|q|", "one-sig", "multi-sig", "sig-mesh"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.result_len.to_string(),
                                fmt_ms(r.one_sig_hash_ms),
                                fmt_ms(r.multi_sig_hash_ms),
                                fmt_ms(r.mesh_hash_ms),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
            if wants(fig, "7d") {
                print_table(
                    "Fig. 7d — total verification time (ms)",
                    &["|q|", "one-sig", "multi-sig", "sig-mesh", "sig-ops(mesh)"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.result_len.to_string(),
                                fmt_ms(r.one_sig_total_ms),
                                fmt_ms(r.multi_sig_total_ms),
                                fmt_ms(r.mesh_total_ms),
                                r.mesh_sig_ops.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
            }
        }
    }

    // ---- Fig. 7c ----------------------------------------------------------
    if wants(fig, "7c") {
        let rows = fig7c_rsa_vs_dsa(scale, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            print_table(
                "Fig. 7c — signature decryption time, RSA vs DSA (ms)",
                &["|q|", "mesh RSA", "mesh DSA", "IFMH RSA", "IFMH DSA"],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.result_len.to_string(),
                            fmt_ms(r.mesh_rsa_ms),
                            fmt_ms(r.mesh_dsa_ms),
                            fmt_ms(r.ifmh_rsa_ms),
                            fmt_ms(r.ifmh_dsa_ms),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }

    // ---- Fig. 8a ----------------------------------------------------------
    if wants(fig, "8a") {
        let rows = fig8a_vo_size_vs_result_len(scale, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            print_table(
                "Fig. 8a — verification-object size vs result length (bytes)",
                &["|q|", "one-sig", "multi-sig", "sig-mesh"],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.x.to_string(),
                            r.one_sig_vo_bytes.to_string(),
                            r.multi_sig_vo_bytes.to_string(),
                            r.mesh_vo_bytes.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }

    // ---- Fig. 8b ----------------------------------------------------------
    if wants(fig, "8b") {
        let rows = fig8b_vo_size_vs_n(scale, 3, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            print_table(
                "Fig. 8b — verification-object size vs database size (bytes, |q| = 3)",
                &["n", "one-sig", "multi-sig", "sig-mesh"],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.x.to_string(),
                            r.one_sig_vo_bytes.to_string(),
                            r.multi_sig_vo_bytes.to_string(),
                            r.mesh_vo_bytes.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }

    // ---- Ablation ---------------------------------------------------------
    if fig == "all" || fig == "ablation" {
        let rows = ablation_split_oracle(scale, 256, seed);
        if args.json {
            println!("{}", to_json(&rows));
        } else {
            print_table(
                "Ablation — exact LP vs Monte-Carlo split oracle",
                &[
                    "n",
                    "LP cells",
                    "MC cells",
                    "LP ms",
                    "MC ms",
                    "MC order agreement",
                ],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.n.to_string(),
                            r.lp_subdomains.to_string(),
                            r.sampling_subdomains.to_string(),
                            fmt_ms(r.lp_build_ms),
                            fmt_ms(r.sampling_build_ms),
                            format!("{:.2}", r.sampling_order_agreement),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }
}
