//! Experiment harness reproducing the paper's evaluation (Sec. 4.3).
//!
//! Every figure of the evaluation has a corresponding runner in
//! [`figures`]; the `figures` binary prints the same series the paper plots,
//! and the Criterion benches in `benches/` time the underlying operations.
//!
//! # Scale note
//!
//! The paper sweeps 1,000–10,000 records. The number of subdomains grows
//! quadratically (and worse in higher dimensions), and the signature mesh
//! needs `#subdomains × (n + 1)` public-key signatures, so exact
//! construction at the paper's upper end is intractable in a test
//! environment (the paper itself notes mesh construction was "extremely
//! time-consuming"). The harness therefore exposes two scales:
//!
//! * [`Scale::Small`] (default) — arrangement-heavy sweeps run at
//!   n = 10–40 records (d = 2), result-length sweeps at n = 1,000 (d = 1);
//!   runs in seconds to a few minutes.
//! * [`Scale::Paper`] — the paper's parameters, for completeness; only
//!   sensible on a large machine with hours of budget.
//!
//! All comparative *shapes* (who wins, growth trends, crossovers) are
//! preserved at the small scale; see EXPERIMENTS.md for measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto_microbench;
pub mod figures;
pub mod report;
pub mod setup;

pub use figures::*;
pub use report::print_table;
pub use setup::{Scale, SchemeSet};
