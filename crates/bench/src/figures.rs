//! Runners for every figure of the paper's evaluation section.
//!
//! | Paper figure | Runner | Metric |
//! |---|---|---|
//! | Fig. 5a | [`fig5_owner`] (`signatures` columns) | signatures needed to build each structure |
//! | Fig. 5b | [`fig5_owner`] (`build_ms` columns) | construction time |
//! | Fig. 5c | [`fig5_owner`] (`bytes` columns) | structure size |
//! | Fig. 6a | [`fig6_server_vs_n`] with [`ServerQueryKind::Top3`] | nodes/cells traversed per query |
//! | Fig. 6b | [`fig6_server_vs_n`] with [`ServerQueryKind::Knn3`] | nodes/cells traversed per query |
//! | Fig. 6c | [`fig6_server_vs_n`] with [`ServerQueryKind::Range3`] | nodes/cells traversed per query |
//! | Fig. 6d | [`fig6d_server_vs_result_len`] | nodes/cells traversed vs result length |
//! | Fig. 7a | [`fig7_user`] (`hash_ops` columns) | hash operations during verification |
//! | Fig. 7b | [`fig7_user`] (`hash_ms` columns) | hashing time |
//! | Fig. 7c | [`fig7c_rsa_vs_dsa`] | signature decryption time, RSA vs DSA |
//! | Fig. 7d | [`fig7_user`] (`total_ms` columns) | total verification time |
//! | Fig. 8a | [`fig8a_vo_size_vs_result_len`] | VO size vs result length |
//! | Fig. 8b | [`fig8b_vo_size_vs_n`] | VO size vs database size |
//! | Ablation | [`ablation_split_oracle`] | LP vs sampling feasibility oracle |

use crate::setup::{probe_weights, range_query_with_result_len, Scale, SchemeSet};
use serde::Serialize;
use std::time::Instant;
use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::sha256::sha256;
use vaq_crypto::{SignatureScheme, Signer};
use vaq_funcdb::{LpSplitOracle, SamplingSplitOracle};
use vaq_itree::ITreeBuilder;
use vaq_sigmesh::{verify_mesh_response, SignatureMesh};
use vaq_workload::uniform_dataset;

/// Default seed for all experiments (override per-call for repetitions).
pub const DEFAULT_SEED: u64 = 20201111;

// ---------------------------------------------------------------------------
// Fig. 5 — data-owner overhead
// ---------------------------------------------------------------------------

/// One row of the Fig. 5 series (one database size).
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Row {
    /// Number of records.
    pub n: usize,
    /// Number of subdomains in the arrangement.
    pub subdomains: usize,
    /// Fig. 5a: signatures created by the one-signature scheme (always 1).
    pub one_sig_signatures: usize,
    /// Fig. 5a: signatures created by the multi-signature scheme.
    pub multi_sig_signatures: usize,
    /// Fig. 5a: signatures created by the signature mesh.
    pub mesh_signatures: usize,
    /// Fig. 5b: construction time of the one-signature IFMH-tree (ms).
    pub one_sig_build_ms: f64,
    /// Fig. 5b: construction time of the multi-signature IFMH-tree (ms).
    pub multi_sig_build_ms: f64,
    /// Fig. 5b: construction time of the signature mesh (ms).
    pub mesh_build_ms: f64,
    /// Fig. 5c: structure size of the one-signature IFMH-tree (bytes).
    pub one_sig_bytes: usize,
    /// Fig. 5c: structure size of the multi-signature IFMH-tree (bytes).
    pub multi_sig_bytes: usize,
    /// Fig. 5c: structure size of the signature mesh (bytes).
    pub mesh_bytes: usize,
}

/// Runs the Fig. 5 sweep (owner overhead vs database size).
pub fn fig5_owner(scale: Scale, seed: u64) -> Vec<Fig5Row> {
    scale
        .size_sweep()
        .into_iter()
        .map(|n| {
            let set = SchemeSet::build_uniform(n, scale.arrangement_dims(), seed, scale.rsa_bits());
            Fig5Row {
                n,
                subdomains: set.one_sig.subdomain_count(),
                one_sig_signatures: set.one_sig.stats().signatures,
                multi_sig_signatures: set.multi_sig.stats().signatures,
                mesh_signatures: set.mesh.stats().signatures,
                one_sig_build_ms: set.one_sig_build.as_secs_f64() * 1e3,
                multi_sig_build_ms: set.multi_sig_build.as_secs_f64() * 1e3,
                mesh_build_ms: set.mesh_build.as_secs_f64() * 1e3,
                one_sig_bytes: set.one_sig.stats().structure_bytes,
                multi_sig_bytes: set.multi_sig.stats().structure_bytes,
                mesh_bytes: set.mesh.stats().structure_bytes,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 6 — server overhead
// ---------------------------------------------------------------------------

/// Which query family a Fig. 6 sweep uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerQueryKind {
    /// Fig. 6a: top-3 queries.
    Top3,
    /// Fig. 6b: 3-NN queries.
    Knn3,
    /// Fig. 6c: range queries with results of length 3.
    Range3,
}

impl ServerQueryKind {
    /// Human-readable label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ServerQueryKind::Top3 => "top-3",
            ServerQueryKind::Knn3 => "3-NN",
            ServerQueryKind::Range3 => "range(|q|=3)",
        }
    }

    /// Builds a query of this kind against `dataset`, seeded by `salt`.
    fn make_query_from(&self, dataset: &vaq_funcdb::Dataset, salt: u64) -> Query {
        let x = probe_weights(dataset.dims(), salt);
        match self {
            ServerQueryKind::Top3 => Query::top_k(x, 3),
            ServerQueryKind::Knn3 => {
                // Aim the target at the middle of the score distribution.
                let mid = {
                    let mut s: Vec<f64> = dataset.functions.iter().map(|f| f.eval(&x)).collect();
                    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    s[s.len() / 2]
                };
                Query::knn(x, 3, mid)
            }
            ServerQueryKind::Range3 => range_query_with_result_len(dataset, x, 3),
        }
    }
}

/// One row of a Fig. 6a–c series.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Row {
    /// Number of records.
    pub n: usize,
    /// Average nodes traversed by the one-signature scheme.
    pub one_sig_nodes: f64,
    /// Average nodes traversed by the multi-signature scheme.
    pub multi_sig_nodes: f64,
    /// Average mesh cells (plus chain entries) traversed by the baseline.
    pub mesh_nodes: f64,
}

/// Runs a Fig. 6a/6b/6c sweep: average server traversal cost vs database
/// size, for `queries_per_point` random weight vectors per size.
pub fn fig6_server_vs_n(
    scale: Scale,
    kind: ServerQueryKind,
    queries_per_point: usize,
    seed: u64,
) -> Vec<Fig6Row> {
    scale
        .size_sweep()
        .into_iter()
        .map(|n| {
            let set = SchemeSet::build_uniform(n, scale.arrangement_dims(), seed, scale.rsa_bits());
            let dataset = set.dataset.clone();
            let one_server = Server::new(dataset.clone(), set.one_sig);
            let multi_server = Server::new(dataset.clone(), set.multi_sig);
            let mesh = set.mesh;

            let mut one_total = 0usize;
            let mut multi_total = 0usize;
            let mut mesh_total = 0usize;
            for q_idx in 0..queries_per_point {
                let query = kind.make_query_from(&dataset, q_idx as u64 + seed);
                one_total += one_server.process(&query).cost.total_nodes();
                multi_total += multi_server.process(&query).cost.total_nodes();
                mesh_total += mesh.process(&dataset, &query).cost.total_nodes();
            }
            let d = queries_per_point as f64;
            Fig6Row {
                n,
                one_sig_nodes: one_total as f64 / d,
                multi_sig_nodes: multi_total as f64 / d,
                mesh_nodes: mesh_total as f64 / d,
            }
        })
        .collect()
}

/// One row of the Fig. 6d series (server cost vs result length).
#[derive(Clone, Debug, Serialize)]
pub struct Fig6dRow {
    /// Result length |q|.
    pub result_len: usize,
    /// Nodes traversed by the one-signature scheme.
    pub one_sig_nodes: usize,
    /// Nodes traversed by the multi-signature scheme.
    pub multi_sig_nodes: usize,
    /// Cells/entries traversed by the mesh.
    pub mesh_nodes: usize,
}

/// Runs Fig. 6d: server traversal cost as the result length grows, database
/// size fixed at [`Scale::sweep_database_size`].
pub fn fig6d_server_vs_result_len(scale: Scale, seed: u64) -> Vec<Fig6dRow> {
    let n = scale.sweep_database_size();
    // A univariate database keeps the arrangement trivial so the large-n
    // result-length sweep stays tractable (the metric of interest here only
    // depends on |q| and the FMH/chain sizes).
    let set = SchemeSet::build_uniform(n, 1, seed, scale.rsa_bits());
    let one_server = Server::new(set.dataset.clone(), set.one_sig);
    let multi_server = Server::new(set.dataset.clone(), set.multi_sig);
    let x = vec![0.7];

    scale
        .result_length_sweep()
        .into_iter()
        .filter(|len| *len <= n)
        .map(|len| {
            let query = range_query_with_result_len(&set.dataset, x.clone(), len);
            Fig6dRow {
                result_len: len,
                one_sig_nodes: one_server.process(&query).cost.total_nodes(),
                multi_sig_nodes: multi_server.process(&query).cost.total_nodes(),
                mesh_nodes: set.mesh.process(&set.dataset, &query).cost.total_nodes(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 7 — user (verification) overhead
// ---------------------------------------------------------------------------

/// One row of the Fig. 7a/7b/7d series.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Row {
    /// Result length |q|.
    pub result_len: usize,
    /// Fig. 7a: hash operations during verification (one-signature).
    pub one_sig_hash_ops: usize,
    /// Fig. 7a: hash operations (multi-signature).
    pub multi_sig_hash_ops: usize,
    /// Fig. 7a: hash operations (mesh).
    pub mesh_hash_ops: usize,
    /// Fig. 7b: estimated hashing time in ms (ops × measured per-hash cost).
    pub one_sig_hash_ms: f64,
    /// Fig. 7b: hashing time (multi-signature).
    pub multi_sig_hash_ms: f64,
    /// Fig. 7b: hashing time (mesh).
    pub mesh_hash_ms: f64,
    /// Number of signature verifications (1, 1, |q|+1).
    pub one_sig_sig_ops: usize,
    /// Signature verifications (multi-signature).
    pub multi_sig_sig_ops: usize,
    /// Signature verifications (mesh).
    pub mesh_sig_ops: usize,
    /// Fig. 7d: total verification wall-clock time in ms (one-signature).
    pub one_sig_total_ms: f64,
    /// Fig. 7d: total verification time (multi-signature).
    pub multi_sig_total_ms: f64,
    /// Fig. 7d: total verification time (mesh).
    pub mesh_total_ms: f64,
}

/// Runs the Fig. 7a/7b/7d sweep: client verification cost vs result length.
pub fn fig7_user(scale: Scale, seed: u64) -> Vec<Fig7Row> {
    let n = scale.sweep_database_size();
    let set = SchemeSet::build_uniform(n, 1, seed, scale.rsa_bits());
    let one_server = Server::new(set.dataset.clone(), set.one_sig);
    let multi_server = Server::new(set.dataset.clone(), set.multi_sig);
    let verifier = set.scheme.verifier();
    let x = vec![0.7];

    // Measure the per-hash cost once so hash counts translate into times.
    let per_hash_ms = measure_per_hash_ms();

    scale
        .result_length_sweep()
        .into_iter()
        .filter(|len| *len <= n)
        .map(|len| {
            let query = range_query_with_result_len(&set.dataset, x.clone(), len);

            let r1 = one_server.process(&query);
            let t0 = Instant::now();
            let v1 = client::verify(
                &query,
                &r1.records,
                &r1.vo,
                &set.dataset.template,
                verifier.as_ref(),
            )
            .expect("one-signature verification must succeed");
            let one_total = t0.elapsed().as_secs_f64() * 1e3;

            let r2 = multi_server.process(&query);
            let t0 = Instant::now();
            let v2 = client::verify(
                &query,
                &r2.records,
                &r2.vo,
                &set.dataset.template,
                verifier.as_ref(),
            )
            .expect("multi-signature verification must succeed");
            let multi_total = t0.elapsed().as_secs_f64() * 1e3;

            let r3 = set.mesh.process(&set.dataset, &query);
            let t0 = Instant::now();
            let v3 = verify_mesh_response(&query, &r3, &set.dataset.template, verifier.as_ref())
                .expect("mesh verification must succeed");
            let mesh_total = t0.elapsed().as_secs_f64() * 1e3;

            Fig7Row {
                result_len: len,
                one_sig_hash_ops: v1.cost.hash_ops,
                multi_sig_hash_ops: v2.cost.hash_ops,
                mesh_hash_ops: v3.cost.hash_ops,
                one_sig_hash_ms: v1.cost.hash_ops as f64 * per_hash_ms,
                multi_sig_hash_ms: v2.cost.hash_ops as f64 * per_hash_ms,
                mesh_hash_ms: v3.cost.hash_ops as f64 * per_hash_ms,
                one_sig_sig_ops: v1.cost.signature_verifications,
                multi_sig_sig_ops: v2.cost.signature_verifications,
                mesh_sig_ops: v3.cost.signature_verifications,
                one_sig_total_ms: one_total,
                multi_sig_total_ms: multi_total,
                mesh_total_ms: mesh_total,
            }
        })
        .collect()
}

/// One row of the Fig. 7c series (RSA vs DSA signature verification time).
#[derive(Clone, Debug, Serialize)]
pub struct Fig7cRow {
    /// Result length |q| (the mesh verifies |q| + 1 signatures).
    pub result_len: usize,
    /// Mesh verification signature-time with RSA signatures (ms).
    pub mesh_rsa_ms: f64,
    /// Mesh verification signature-time with DSA signatures (ms).
    pub mesh_dsa_ms: f64,
    /// IFMH verification signature-time with RSA (ms) — always one signature.
    pub ifmh_rsa_ms: f64,
    /// IFMH verification signature-time with DSA (ms).
    pub ifmh_dsa_ms: f64,
}

/// Runs Fig. 7c: time spent decrypting (verifying) signatures, RSA vs DSA,
/// as a function of the result length.
pub fn fig7c_rsa_vs_dsa(scale: Scale, seed: u64) -> Vec<Fig7cRow> {
    // Measure single verification costs for both algorithms once.
    let rsa = SignatureScheme::new_rsa(scale.rsa_bits(), seed);
    let (p_bits, q_bits) = scale.dsa_bits();
    let dsa = SignatureScheme::new_dsa(p_bits, q_bits, seed);
    let digest = sha256(b"fig7c calibration digest");
    let rsa_sig = rsa.sign_digest(&digest);
    let dsa_sig = dsa.sign_digest(&digest);
    let rsa_verifier = rsa.verifier();
    let dsa_verifier = dsa.verifier();

    let per_rsa_ms = measure_ms(|| {
        assert!(rsa_verifier.verify_digest(&digest, &rsa_sig));
    });
    let per_dsa_ms = measure_ms(|| {
        assert!(dsa_verifier.verify_digest(&digest, &dsa_sig));
    });

    scale
        .result_length_sweep()
        .into_iter()
        .map(|len| Fig7cRow {
            result_len: len,
            mesh_rsa_ms: (len + 1) as f64 * per_rsa_ms,
            mesh_dsa_ms: (len + 1) as f64 * per_dsa_ms,
            ifmh_rsa_ms: per_rsa_ms,
            ifmh_dsa_ms: per_dsa_ms,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 8 — communication overhead (VO size)
// ---------------------------------------------------------------------------

/// One row of the Fig. 8 series.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Row {
    /// The swept parameter: result length (8a) or database size (8b).
    pub x: usize,
    /// VO size of the one-signature scheme in bytes.
    pub one_sig_vo_bytes: usize,
    /// VO size of the multi-signature scheme in bytes.
    pub multi_sig_vo_bytes: usize,
    /// VO size of the mesh baseline in bytes.
    pub mesh_vo_bytes: usize,
}

/// Runs Fig. 8a: VO size vs result length at a fixed database size.
pub fn fig8a_vo_size_vs_result_len(scale: Scale, seed: u64) -> Vec<Fig8Row> {
    let n = scale.sweep_database_size();
    let set = SchemeSet::build_uniform(n, 1, seed, scale.rsa_bits());
    let one_server = Server::new(set.dataset.clone(), set.one_sig);
    let multi_server = Server::new(set.dataset.clone(), set.multi_sig);
    let x = vec![0.7];
    scale
        .result_length_sweep()
        .into_iter()
        .filter(|len| *len <= n)
        .map(|len| {
            let query = range_query_with_result_len(&set.dataset, x.clone(), len);
            Fig8Row {
                x: len,
                one_sig_vo_bytes: one_server.process(&query).vo.byte_size(),
                multi_sig_vo_bytes: multi_server.process(&query).vo.byte_size(),
                mesh_vo_bytes: set.mesh.process(&set.dataset, &query).vo.byte_size(),
            }
        })
        .collect()
}

/// Runs Fig. 8b: VO size vs database size at a fixed result length.
pub fn fig8b_vo_size_vs_n(scale: Scale, result_len: usize, seed: u64) -> Vec<Fig8Row> {
    scale
        .size_sweep()
        .into_iter()
        .map(|n| {
            let set = SchemeSet::build_uniform(n, scale.arrangement_dims(), seed, scale.rsa_bits());
            let one_server = Server::new(set.dataset.clone(), set.one_sig);
            let multi_server = Server::new(set.dataset.clone(), set.multi_sig);
            let x = probe_weights(set.dataset.dims(), seed);
            let len = result_len.min(n);
            let query = range_query_with_result_len(&set.dataset, x, len);
            Fig8Row {
                x: n,
                one_sig_vo_bytes: one_server.process(&query).vo.byte_size(),
                multi_sig_vo_bytes: multi_server.process(&query).vo.byte_size(),
                mesh_vo_bytes: set.mesh.process(&set.dataset, &query).vo.byte_size(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation — exact vs sampled feasibility oracle
// ---------------------------------------------------------------------------

/// One row of the split-oracle ablation.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// Number of records.
    pub n: usize,
    /// Subdomains found by the exact LP oracle.
    pub lp_subdomains: usize,
    /// Subdomains found by the Monte-Carlo oracle.
    pub sampling_subdomains: usize,
    /// Build time with the LP oracle (ms).
    pub lp_build_ms: f64,
    /// Build time with the sampling oracle (ms).
    pub sampling_build_ms: f64,
    /// Fraction of probe points whose located sort order matches the direct
    /// sort, under the sampling oracle (the LP oracle is exact by
    /// construction and always scores 1.0).
    pub sampling_order_agreement: f64,
}

/// Runs the feasibility-oracle ablation called out in DESIGN.md: exact LP
/// splitting versus Monte-Carlo sampling.
pub fn ablation_split_oracle(scale: Scale, samples: usize, seed: u64) -> Vec<AblationRow> {
    scale
        .size_sweep()
        .into_iter()
        .map(|n| {
            let dataset = uniform_dataset(n, scale.arrangement_dims(), seed);

            let t0 = Instant::now();
            let lp_tree = ITreeBuilder::new(LpSplitOracle::new())
                .build(&dataset.functions, dataset.domain.clone());
            let lp_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            let mc_tree = ITreeBuilder::new(SamplingSplitOracle::new(samples, seed))
                .build(&dataset.functions, dataset.domain.clone());
            let mc_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Probe agreement of the sampled tree against direct sorting.
            let probes = 200usize;
            let mut agree = 0usize;
            for i in 0..probes {
                let x = probe_weights(dataset.dims(), seed + i as u64);
                let located = mc_tree.locate(&x);
                let tree_order = mc_tree.sorted_list(located.leaf).to_vec();
                let direct = vaq_funcdb::sort_functions_at(&dataset.functions, &x);
                if tree_order == direct {
                    agree += 1;
                }
            }

            AblationRow {
                n,
                lp_subdomains: lp_tree.subdomain_count(),
                sampling_subdomains: mc_tree.subdomain_count(),
                lp_build_ms: lp_ms,
                sampling_build_ms: mc_ms,
                sampling_order_agreement: agree as f64 / probes as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Timing helpers
// ---------------------------------------------------------------------------

/// Measures the wall-clock cost of one SHA-256 invocation in milliseconds.
pub fn measure_per_hash_ms() -> f64 {
    let data = [0x5au8; 96];
    let iters = 20_000;
    let t0 = Instant::now();
    let mut acc = 0u8;
    for _ in 0..iters {
        acc ^= sha256(&data)[0];
    }
    let elapsed = t0.elapsed().as_secs_f64() * 1e3;
    // Keep the accumulator observable so the loop is not optimised away.
    std::hint::black_box(acc);
    elapsed / iters as f64
}

/// Measures a closure's wall-clock cost in milliseconds (averaged over a few
/// repetitions).
pub fn measure_ms(mut f: impl FnMut()) -> f64 {
    let iters = 10;
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

// ---------------------------------------------------------------------------
// Convenience: build one IFMH tree quickly for the Criterion benches
// ---------------------------------------------------------------------------

/// Builds a one-signature IFMH-tree over a small uniform dataset (used by
/// the Criterion benches so they do not repeat the full SchemeSet setup).
pub fn quick_tree(
    n: usize,
    dims: usize,
    mode: SigningMode,
    seed: u64,
) -> (vaq_funcdb::Dataset, IfmhTree, SignatureScheme) {
    let dataset = uniform_dataset(n, dims, seed);
    let scheme = SignatureScheme::new_rsa(256, seed);
    let tree = IfmhTree::build(&dataset, mode, &scheme);
    (dataset, tree, scheme)
}

/// Builds a signature mesh over a small uniform dataset.
pub fn quick_mesh(
    n: usize,
    dims: usize,
    seed: u64,
) -> (vaq_funcdb::Dataset, SignatureMesh, SignatureScheme) {
    let dataset = uniform_dataset(n, dims, seed);
    let scheme = SignatureScheme::new_rsa(256, seed);
    let mesh = SignatureMesh::build(&dataset, &scheme);
    (dataset, mesh, scheme)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature scale so the harness itself can be smoke-tested quickly.
    fn tiny_rows() -> Vec<usize> {
        vec![6, 10]
    }

    #[test]
    fn fig5_rows_have_expected_shape() {
        // Use the public API with the smallest sizes to keep this test quick.
        let rows: Vec<Fig5Row> = tiny_rows()
            .into_iter()
            .map(|n| {
                let set = SchemeSet::build_uniform(n, 2, 1, 128);
                Fig5Row {
                    n,
                    subdomains: set.one_sig.subdomain_count(),
                    one_sig_signatures: set.one_sig.stats().signatures,
                    multi_sig_signatures: set.multi_sig.stats().signatures,
                    mesh_signatures: set.mesh.stats().signatures,
                    one_sig_build_ms: set.one_sig_build.as_secs_f64() * 1e3,
                    multi_sig_build_ms: set.multi_sig_build.as_secs_f64() * 1e3,
                    mesh_build_ms: set.mesh_build.as_secs_f64() * 1e3,
                    one_sig_bytes: set.one_sig.stats().structure_bytes,
                    multi_sig_bytes: set.multi_sig.stats().structure_bytes,
                    mesh_bytes: set.mesh.stats().structure_bytes,
                }
            })
            .collect();
        for row in &rows {
            // Paper shape: one-signature needs exactly 1 signature, the
            // multi-signature one per subdomain, the mesh far more.
            assert_eq!(row.one_sig_signatures, 1);
            assert_eq!(row.multi_sig_signatures, row.subdomains);
            assert!(row.mesh_signatures > row.multi_sig_signatures);
            assert!(row.mesh_signatures >= row.subdomains * (row.n / 2));
        }
    }

    #[test]
    fn fig7c_shows_mesh_scaling_and_rsa_faster_than_dsa() {
        let rows = fig7c_rsa_vs_dsa(Scale::Small, 3);
        assert!(!rows.is_empty());
        for row in &rows {
            // Mesh signature time scales with |q|; IFMH stays flat.
            assert!(row.mesh_rsa_ms > row.ifmh_rsa_ms);
            // RSA verification (e = 65537) is cheaper than DSA's two full
            // exponentiations.
            assert!(row.mesh_dsa_ms > row.mesh_rsa_ms);
        }
    }

    #[test]
    fn per_hash_measurement_is_positive_and_small() {
        let ms = measure_per_hash_ms();
        assert!(ms > 0.0);
        assert!(
            ms < 1.0,
            "a single SHA-256 should be far below 1 ms, got {ms}"
        );
    }
}
