//! Plain-text and JSON reporting helpers for the figures binary.

use serde::Serialize;

/// Prints a column-aligned table.
///
/// `headers` names the columns and each row must have the same arity.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Serializes rows as a JSON array (pretty-printed) for machine consumption.
pub fn to_json<T: Serialize>(rows: &[T]) -> String {
    serde_json::to_string_pretty(rows).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        a: usize,
        b: f64,
    }

    #[test]
    fn json_serializes_rows() {
        let rows = vec![Row { a: 1, b: 2.5 }, Row { a: 2, b: 3.5 }];
        let s = to_json(&rows);
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": 3.5"));
    }

    #[test]
    fn fmt_ms_three_decimals() {
        assert_eq!(fmt_ms(1.23456), "1.235");
        assert_eq!(fmt_ms(0.0), "0.000");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "test",
            &["x", "y"],
            &[vec!["1".into(), "2".into()], vec!["3".into()]],
        );
    }
}
