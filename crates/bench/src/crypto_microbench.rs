//! Old-vs-new microbenchmarks for the hot-path crypto rework.
//!
//! Each row times the superseded implementation against the shipped fast
//! path over identical inputs:
//!
//! * `mod_pow` — schoolbook square-and-multiply ([`BigUint::mod_pow_legacy`])
//!   vs the Montgomery-form dispatch ([`BigUint::mod_pow`], which builds a
//!   [`MontgomeryContext`] per call exactly as the RSA/DSA paths do).
//! * `dsa_sign` — fresh per-signature nonce exponentiation vs pooled
//!   signing from precomputed `(r, k⁻¹)` pairs (the pool is replenished
//!   off the timed path, as the signer does between requests).
//! * `dsa_verify` — the textbook two-exponentiation verify rebuilt on the
//!   legacy `mod_pow` vs [`DsaPublicKey::verify`] with its cached
//!   fixed-base tables.
//! * `sha256_pair` — hashing two digests through a concatenation buffer
//!   (what the deleted `sha256_concat` did) vs the block-batched
//!   [`sha256_pair`].
//!
//! The rows land in the `crypto_microbench` section of the `bench_report`
//! artifact.

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use vaq_crypto::sha256::{sha256, sha256_pair, Digest};
use vaq_crypto::sign_pool::DsaSigningPool;
use vaq_crypto::{BigUint, DsaKeyPair, DsaPublicKey, DsaSignature};

/// One old-vs-new comparison in the artifact.
#[derive(Serialize)]
pub struct MicrobenchRow {
    /// Operation name (`mod_pow`, `dsa_sign`, `dsa_verify`, `sha256_pair`).
    pub name: String,
    /// Timed iterations per side.
    pub ops: u64,
    /// Mean nanoseconds per op, superseded implementation.
    pub old_ns_per_op: f64,
    /// Mean nanoseconds per op, shipped fast path.
    pub new_ns_per_op: f64,
    /// `old_ns_per_op / new_ns_per_op`.
    pub speedup: f64,
}

fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters.max(1) as f64
}

fn row(name: &str, ops: u64, old_ns: f64, new_ns: f64) -> MicrobenchRow {
    MicrobenchRow {
        name: name.to_string(),
        ops,
        old_ns_per_op: old_ns,
        new_ns_per_op: new_ns,
        speedup: if new_ns > 0.0 { old_ns / new_ns } else { 0.0 },
    }
}

/// A random odd modulus of exactly `bits` bits.
fn odd_modulus(rng: &mut StdRng, bits: usize) -> BigUint {
    let m = BigUint::random_exact_bits(rng, bits);
    if m.is_even() {
        m.add(&BigUint::one())
    } else {
        m
    }
}

/// The textbook DSA verify, forced onto the legacy exponentiation: the
/// pre-fast-path implementation, kept here for the comparison.
fn verify_legacy(pk: &DsaPublicKey, digest: &Digest, sig: &DsaSignature) -> bool {
    if sig.r.is_zero() || sig.s.is_zero() {
        return false;
    }
    let w = match sig.s.mod_inverse(&pk.q) {
        Some(w) => w,
        None => return false,
    };
    let z = BigUint::from_bytes_be(digest);
    let excess = z.bits().saturating_sub(pk.q.bits());
    let z = z.shr(excess).rem(&pk.q);
    let u1 = z.mul_mod(&w, &pk.q);
    let u2 = sig.r.mul_mod(&w, &pk.q);
    let v =
        pk.g.mod_pow_legacy(&u1, &pk.p)
            .mul_mod(&pk.y.mod_pow_legacy(&u2, &pk.p), &pk.p)
            .rem(&pk.q);
    v == sig.r
}

/// Runs the four comparisons. Smoke mode shrinks parameter sizes and
/// iteration counts so CI finishes in seconds; full mode uses the classic
/// 512/160-bit DSA sizes and 256-bit exponentiations.
pub fn run(smoke: bool, seed: u64) -> Vec<MicrobenchRow> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc1b0);
    let (exp_bits, p_bits, q_bits) = if smoke {
        (128, 160, 64)
    } else {
        (256, 512, 160)
    };
    let (exp_iters, sign_iters, verify_iters, sha_iters) = if smoke {
        (10u64, 40u64, 10u64, 4_000u64)
    } else {
        (60u64, 400u64, 40u64, 40_000u64)
    };
    let mut rows = Vec::with_capacity(4);

    // mod_pow: identical random operands through both exponentiation paths.
    let modulus = odd_modulus(&mut rng, exp_bits);
    let base = BigUint::random_below(&mut rng, &modulus);
    let exponent = BigUint::random_exact_bits(&mut rng, exp_bits);
    let old = time_ns(exp_iters, || {
        black_box(base.mod_pow_legacy(&exponent, &modulus));
    });
    let new = time_ns(exp_iters, || {
        black_box(base.mod_pow(&exponent, &modulus));
    });
    rows.push(row("mod_pow", exp_iters, old, new));

    // dsa_sign: fresh nonce exponentiation vs the precomputed pair pool.
    let kp = DsaKeyPair::generate(p_bits, q_bits, &mut rng);
    let digest = sha256(b"crypto_microbench");
    let old = time_ns(sign_iters, || {
        black_box(kp.sign(&digest, &mut rng));
    });
    let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(seed ^ 0x9001));
    pool.replenish(sign_iters as usize + 4);
    let new = time_ns(sign_iters, || {
        black_box(kp.sign_pooled(&digest, &mut pool));
    });
    rows.push(row("dsa_sign", sign_iters, old, new));

    // dsa_verify: textbook double exponentiation vs cached fixed-base
    // tables (warmed once before timing, as any long-lived verifier is).
    let signature = kp.sign(&digest, &mut rng);
    assert!(verify_legacy(&kp.public, &digest, &signature));
    assert!(kp.public.verify(&digest, &signature));
    let old = time_ns(verify_iters, || {
        black_box(verify_legacy(&kp.public, &digest, &signature));
    });
    let new = time_ns(verify_iters, || {
        black_box(kp.public.verify(&digest, &signature));
    });
    rows.push(row("dsa_verify", verify_iters, old, new));

    // sha256_pair: the staging-buffer concatenation hash vs one-block
    // streaming compression.
    let a = sha256(b"left");
    let b = sha256(b"right");
    let old = time_ns(sha_iters, || {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        black_box(sha256(&buf));
    });
    let new = time_ns(sha_iters, || {
        black_box(sha256_pair(&a, &b));
    });
    rows.push(row("sha256_pair", sha_iters, old, new));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rows_cover_all_four_operations() {
        let rows = run(true, 7);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["mod_pow", "dsa_sign", "dsa_verify", "sha256_pair"]);
        for row in &rows {
            assert!(row.ops > 0);
            assert!(row.old_ns_per_op > 0.0, "{}", row.name);
            assert!(row.new_ns_per_op > 0.0, "{}", row.name);
        }
    }
}
