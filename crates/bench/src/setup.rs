//! Shared experiment setup: datasets, schemes and query helpers.

use std::time::{Duration, Instant};
use vaq_authquery::{IfmhTree, Query, SigningMode};
use vaq_crypto::{SignatureScheme, Signer, Verifier};
use vaq_funcdb::Dataset;
use vaq_sigmesh::SignatureMesh;
use vaq_workload::uniform_dataset;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes that finish in seconds–minutes (default).
    Small,
    /// The paper's original parameters (hours of compute; use with care).
    Paper,
}

impl Scale {
    /// Record counts for the database-size sweeps (Figs. 5, 6a–c, 8b).
    pub fn size_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![8, 12, 16, 20, 26, 32],
            Scale::Paper => vec![1_000, 2_500, 5_000, 7_500, 10_000],
        }
    }

    /// Database size for the result-length sweeps (Figs. 6d, 7, 8a).
    pub fn sweep_database_size(&self) -> usize {
        match self {
            Scale::Small => 1_000,
            Scale::Paper => 10_000,
        }
    }

    /// Result lengths for the result-length sweeps.
    pub fn result_length_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![50, 100, 200, 400, 600, 800, 1_000],
            Scale::Paper => vec![1_000, 2_500, 5_000, 7_500, 10_000],
        }
    }

    /// Dimensionality used for arrangement-heavy sweeps. Two weight
    /// variables give the `O(n²)` wedge arrangement the paper's analysis
    /// assumes.
    pub fn arrangement_dims(&self) -> usize {
        2
    }

    /// RSA modulus bits for the experiments (the paper used 640-byte RSA
    /// signatures; the harness defaults to smaller keys so the mesh baseline
    /// finishes).
    pub fn rsa_bits(&self) -> usize {
        match self {
            Scale::Small => 192,
            Scale::Paper => 1_024,
        }
    }

    /// DSA (p, q) bits.
    pub fn dsa_bits(&self) -> (usize, usize) {
        match self {
            Scale::Small => (256, 96),
            Scale::Paper => (1_024, 160),
        }
    }
}

/// The three schemes built over one dataset, plus their build times.
pub struct SchemeSet {
    /// The dataset all three schemes index.
    pub dataset: Dataset,
    /// One-signature IFMH-tree.
    pub one_sig: IfmhTree,
    /// Multi-signature IFMH-tree.
    pub multi_sig: IfmhTree,
    /// Signature-mesh baseline.
    pub mesh: SignatureMesh,
    /// Wall-clock build time of the one-signature tree.
    pub one_sig_build: Duration,
    /// Wall-clock build time of the multi-signature tree.
    pub multi_sig_build: Duration,
    /// Wall-clock build time of the mesh.
    pub mesh_build: Duration,
    /// The signing scheme (kept so callers can obtain the verifier).
    pub scheme: SignatureScheme,
}

impl SchemeSet {
    /// Builds all three structures over a uniform dataset of `n` records with
    /// `dims` weight variables.
    pub fn build_uniform(n: usize, dims: usize, seed: u64, rsa_bits: usize) -> Self {
        let dataset = uniform_dataset(n, dims, seed);
        Self::build(dataset, seed, rsa_bits)
    }

    /// Builds all three structures over the given dataset.
    pub fn build(dataset: Dataset, seed: u64, rsa_bits: usize) -> Self {
        let scheme = SignatureScheme::new_rsa(rsa_bits, seed ^ 0xA5A5);

        let t0 = Instant::now();
        let one_sig = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
        let one_sig_build = t0.elapsed();

        let t0 = Instant::now();
        let multi_sig = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
        let multi_sig_build = t0.elapsed();

        let t0 = Instant::now();
        let mesh = SignatureMesh::build(&dataset, &scheme);
        let mesh_build = t0.elapsed();

        SchemeSet {
            dataset,
            one_sig,
            multi_sig,
            mesh,
            one_sig_build,
            multi_sig_build,
            mesh_build,
            scheme,
        }
    }

    /// The owner's public verification key.
    pub fn verifier(&self) -> Box<dyn Verifier> {
        self.scheme.verifier()
    }
}

/// Builds a range query at weight vector `x` whose result contains exactly
/// (or as close as possible to) `len` records of the dataset.
pub fn range_query_with_result_len(dataset: &Dataset, x: Vec<f64>, len: usize) -> Query {
    let mut scores: Vec<f64> = dataset.functions.iter().map(|f| f.eval(&x)).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if scores.is_empty() || len == 0 {
        return Query::range(x, 1.0, 0.9 + 1.0); // empty range above everything
    }
    let len = len.min(scores.len());
    // Centre the window in the middle of the score distribution.
    let start = (scores.len() - len) / 2;
    let lower = scores[start] - 1e-9;
    let upper = scores[start + len - 1] + 1e-9;
    Query::range(x, lower, upper)
}

/// A fixed, reproducible weight vector inside the unit domain.
pub fn probe_weights(dims: usize, salt: u64) -> Vec<f64> {
    (0..dims)
        .map(|i| {
            let v = ((salt.wrapping_mul(2654435761).wrapping_add(i as u64 * 97)) % 89) as f64;
            0.05 + 0.9 * (v / 89.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_set_builds_and_answers() {
        let set = SchemeSet::build_uniform(8, 2, 3, 128);
        assert_eq!(set.one_sig.signature_count(), 1);
        assert!(set.multi_sig.signature_count() >= 1);
        assert!(set.mesh.stats().signatures > set.multi_sig.signature_count());
        let q = Query::top_k(probe_weights(2, 1), 3);
        let server = vaq_authquery::Server::new(set.dataset.clone(), set.one_sig);
        let resp = server.process(&q);
        assert_eq!(resp.records.len(), 3);
    }

    #[test]
    fn range_query_helper_hits_requested_length() {
        let ds = uniform_dataset(50, 1, 4);
        let x = vec![0.6];
        for len in [1usize, 5, 20, 50] {
            let q = range_query_with_result_len(&ds, x.clone(), len);
            if let Query::Range { lower, upper, .. } = &q {
                let count = ds
                    .functions
                    .iter()
                    .filter(|f| {
                        let s = f.eval(&x);
                        s >= *lower && s <= *upper
                    })
                    .count();
                assert_eq!(count, len);
            } else {
                panic!("helper must build a range query");
            }
        }
    }

    #[test]
    fn probe_weights_stay_in_unit_domain() {
        for salt in 0..20 {
            let w = probe_weights(3, salt);
            assert!(w.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn scales_expose_parameters() {
        assert!(Scale::Small.size_sweep().len() >= 3);
        assert!(Scale::Paper.sweep_database_size() > Scale::Small.sweep_database_size());
        assert_eq!(Scale::Small.arrangement_dims(), 2);
    }
}
