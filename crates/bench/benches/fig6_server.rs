//! Criterion bench for Fig. 6 (server overhead): time to process a query and
//! construct the verification object, for top-3, 3-NN and range queries,
//! comparing the IFMH schemes against the linear-search signature mesh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_sigmesh::SignatureMesh;
use vaq_workload::uniform_dataset;

fn bench_server_processing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_server_processing");
    group.sample_size(20);

    let n = 24;
    let dataset = uniform_dataset(n, 2, 7);
    let scheme = SignatureScheme::new_rsa(192, 7);
    let one = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme),
    );
    let multi = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme),
    );
    let mesh = SignatureMesh::build(&dataset, &scheme);

    let x = vec![0.31, 0.77];
    let mid_score = {
        let mut s: Vec<f64> = dataset.functions.iter().map(|f| f.eval(&x)).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let queries = vec![
        ("top3", Query::top_k(x.clone(), 3)),
        ("knn3", Query::knn(x.clone(), 3, mid_score)),
        (
            "range",
            Query::range(x.clone(), mid_score - 0.05, mid_score + 0.05),
        ),
    ];

    for (label, query) in &queries {
        group.bench_with_input(BenchmarkId::new("one_signature", label), query, |b, q| {
            b.iter(|| one.process(q))
        });
        group.bench_with_input(BenchmarkId::new("multi_signature", label), query, |b, q| {
            b.iter(|| multi.process(q))
        });
        group.bench_with_input(BenchmarkId::new("signature_mesh", label), query, |b, q| {
            b.iter(|| mesh.process(&dataset, q))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server_processing);
criterion_main!(benches);
