//! Scatter-gather throughput across shard counts: one logical dataset
//! partitioned into S = 1..8 shards, each behind its own `QueryService`,
//! driven by a closed-loop generator whose every answer is merged from all
//! shards and fully verified (per-shard keys + attested shard map).
//!
//! The interesting trade-off: more shards shrink each shard's authenticated
//! structure (faster per-shard processing, smaller proofs) but multiply the
//! per-query network round-trips and signature verifications by S.
//!
//! The batched mode sends part of the workload as epoch-pinned batch frames
//! (`Request::BatchAt`): one frame per shard carries the whole batch, so the
//! per-request framing and scatter overhead amortises across the batch while
//! every sub-response is still individually verified and merged.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::SigningMode;
use vaq_service::{LoadGenerator, ServiceConfig, ShardedDeployment};
use vaq_workload::{uniform_dataset, QueryMix};

fn bench_sharded_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_throughput");
    group.sample_size(10);

    let dataset = uniform_dataset(32, 1, 2026);

    for shards in 1..=8usize {
        let deployment = ShardedDeployment::launch(
            &dataset,
            shards,
            SigningMode::MultiSignature,
            2026 + shards as u64,
            ServiceConfig::ephemeral().workers(2),
        )
        .expect("launch sharded deployment");

        group.bench_with_input(
            BenchmarkId::new("scatter_gather_verified", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    let generator = LoadGenerator {
                        mix: QueryMix::weighted(2, 1, 1),
                        ..LoadGenerator::sharded(
                            deployment.addrs().to_vec(),
                            deployment.publication().clone(),
                            2,
                            10,
                        )
                    };
                    let report = generator.run(&dataset).expect("sharded load run");
                    assert_eq!(report.failures, 0);
                    report
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("scatter_gather_verified_batched", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    // Every second request is a 3..6-query batch: one
                    // BatchAt frame per shard per batch, merged and fully
                    // verified per sub-query.
                    let generator = LoadGenerator {
                        mix: QueryMix::weighted(2, 1, 1).with_batches(4, 3, 6),
                        ..LoadGenerator::sharded(
                            deployment.addrs().to_vec(),
                            deployment.publication().clone(),
                            2,
                            10,
                        )
                    };
                    let report = generator.run(&dataset).expect("batched sharded load run");
                    assert_eq!(report.failures, 0);
                    assert!(report.batches > 0, "batched mode must issue batches");
                    report
                })
            },
        );

        let served: u64 = deployment
            .shutdown()
            .iter()
            .map(|s| s.requests_served)
            .sum();
        println!("S={shards}: {served} shard-requests served");
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_throughput);
criterion_main!(benches);
