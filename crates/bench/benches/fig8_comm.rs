//! Criterion bench for Fig. 8 (communication overhead): time to assemble the
//! verification object, plus a one-off report of the VO sizes (the figure's
//! actual metric, printed to stderr since Criterion only records time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_sigmesh::SignatureMesh;
use vaq_workload::uniform_dataset;

fn range_with_len(dataset: &vaq_funcdb::Dataset, x: Vec<f64>, len: usize) -> Query {
    let mut scores: Vec<f64> = dataset.functions.iter().map(|f| f.eval(&x)).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let len = len.min(scores.len());
    let start = (scores.len() - len) / 2;
    Query::range(x, scores[start] - 1e-9, scores[start + len - 1] + 1e-9)
}

fn bench_vo_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_vo_assembly");
    group.sample_size(20);

    let n = 400;
    let dataset = uniform_dataset(n, 1, 19);
    let scheme = SignatureScheme::new_rsa(192, 19);
    let one = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme),
    );
    let multi = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme),
    );
    let mesh = SignatureMesh::build(&dataset, &scheme);
    let x = vec![0.4];

    for &len in &[10usize, 50, 200] {
        let query = range_with_len(&dataset, x.clone(), len);

        // Report the Fig. 8a metric (VO size in bytes) once per point.
        let s1 = one.process(&query).vo.byte_size();
        let s2 = multi.process(&query).vo.byte_size();
        let s3 = mesh.process(&dataset, &query).vo.byte_size();
        eprintln!("fig8a |q|={len}: one-sig={s1} B, multi-sig={s2} B, mesh={s3} B");

        group.bench_with_input(BenchmarkId::new("one_signature", len), &query, |b, q| {
            b.iter(|| one.process(q).vo.byte_size())
        });
        group.bench_with_input(BenchmarkId::new("multi_signature", len), &query, |b, q| {
            b.iter(|| multi.process(q).vo.byte_size())
        });
        group.bench_with_input(BenchmarkId::new("signature_mesh", len), &query, |b, q| {
            b.iter(|| mesh.process(&dataset, q).vo.byte_size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vo_assembly);
criterion_main!(benches);
