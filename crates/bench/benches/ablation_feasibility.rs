//! Ablation bench: I-tree construction with the exact LP split oracle versus
//! the Monte-Carlo sampling oracle (DESIGN.md ablation #1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_funcdb::{LpSplitOracle, SamplingSplitOracle};
use vaq_itree::ITreeBuilder;
use vaq_workload::uniform_dataset;

fn bench_split_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_split_oracle");
    group.sample_size(10);

    for &n in &[8usize, 16, 24] {
        let dataset = uniform_dataset(n, 2, 5);

        group.bench_with_input(BenchmarkId::new("lp_oracle", n), &n, |b, _| {
            b.iter(|| {
                ITreeBuilder::new(LpSplitOracle::new())
                    .build(&dataset.functions, dataset.domain.clone())
            })
        });
        for &samples in &[64usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(format!("sampling_oracle_{samples}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        ITreeBuilder::new(SamplingSplitOracle::new(samples, 5))
                            .build(&dataset.functions, dataset.domain.clone())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_split_oracles);
criterion_main!(benches);
