//! Localhost throughput benchmark for the networked query service: a
//! closed-loop load generator with N concurrent verifying clients against
//! one `QueryService`, across cold- and warm-cache regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::{IfmhTree, Server, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_service::{LoadGenerator, QueryService, ServiceConfig};
use vaq_workload::{uniform_dataset, QueryMix};

fn bench_service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    let dataset = uniform_dataset(16, 1, 2025);
    let scheme = SignatureScheme::test_rsa(2025);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(4),
        Server::new(dataset.clone(), tree),
    )
    .expect("bind service");
    let addr = service.local_addr();

    for &clients in &[1usize, 2, 4] {
        // Distinct seeds per iteration keep the cache cold; a fixed seed
        // replays the identical stream and exercises the hit path.
        for (regime, reseed) in [("cold_cache", true), ("warm_cache", false)] {
            let mut seed_bump = 0u64;
            group.bench_with_input(
                BenchmarkId::new(regime, clients),
                &clients,
                |b, &clients| {
                    b.iter(|| {
                        seed_bump += u64::from(reseed);
                        let generator = LoadGenerator {
                            mix: QueryMix::weighted(2, 1, 1),
                            seed: 0x10ad + seed_bump * 1000,
                            ..LoadGenerator::new(
                                addr,
                                clients,
                                20,
                                dataset.template.clone(),
                                scheme.public_key(),
                            )
                        };
                        generator.run(&dataset).expect("load run")
                    })
                },
            );
        }
    }
    group.finish();

    let stats = service.shutdown();
    println!(
        "service served {} requests, cache hits {}, bytes out {}",
        stats.requests_served, stats.cache_hits, stats.bytes_out
    );
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
