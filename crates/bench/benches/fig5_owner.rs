//! Criterion bench for Fig. 5 (data-owner overhead): construction time of
//! the one-signature IFMH-tree, the multi-signature IFMH-tree and the
//! signature-mesh baseline as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::{IfmhTree, SigningMode};
use vaq_crypto::SignatureScheme;
use vaq_sigmesh::SignatureMesh;
use vaq_workload::uniform_dataset;

fn bench_owner_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_owner_construction");
    group.sample_size(10);

    for &n in &[8usize, 12, 16] {
        let dataset = uniform_dataset(n, 2, 42);
        let scheme = SignatureScheme::new_rsa(192, 42);

        group.bench_with_input(BenchmarkId::new("one_signature", n), &n, |b, _| {
            b.iter(|| IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme))
        });
        group.bench_with_input(BenchmarkId::new("multi_signature", n), &n, |b, _| {
            b.iter(|| IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme))
        });
        // The mesh signs #subdomains × (n + 1) times, so a single build at
        // n = 16 already takes ~10 s; larger sizes are covered by the
        // `figures` binary (Fig. 5b) rather than Criterion's repeated runs.
        if n <= 12 {
            group.bench_with_input(BenchmarkId::new("signature_mesh", n), &n, |b, _| {
                b.iter(|| SignatureMesh::build(&dataset, &scheme))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_owner_construction);
criterion_main!(benches);
