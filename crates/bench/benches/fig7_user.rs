//! Criterion bench for Fig. 7 (user overhead): client-side verification time
//! as a function of the result length, for both IFMH schemes and the mesh.
//! The mesh verifies |q| + 1 signatures, the IFMH schemes exactly one — this
//! bench makes that gap directly measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{SignatureScheme, Signer};
use vaq_sigmesh::{verify_mesh_response, SignatureMesh};
use vaq_workload::uniform_dataset;

fn range_with_len(dataset: &vaq_funcdb::Dataset, x: Vec<f64>, len: usize) -> Query {
    let mut scores: Vec<f64> = dataset.functions.iter().map(|f| f.eval(&x)).collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let len = len.min(scores.len());
    let start = (scores.len() - len) / 2;
    Query::range(x, scores[start] - 1e-9, scores[start + len - 1] + 1e-9)
}

fn bench_client_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_client_verification");
    group.sample_size(10);

    // Univariate database: one subdomain, so the sweep isolates the effect
    // of the result length exactly as the paper's Fig. 7 does.
    let n = 500;
    let dataset = uniform_dataset(n, 1, 11);
    let scheme = SignatureScheme::new_rsa(192, 11);
    let one = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme),
    );
    let multi = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme),
    );
    let mesh = SignatureMesh::build(&dataset, &scheme);
    let verifier = scheme.verifier();
    let x = vec![0.7];

    for &len in &[25usize, 100, 250] {
        let query = range_with_len(&dataset, x.clone(), len);
        let r_one = one.process(&query);
        let r_multi = multi.process(&query);
        let r_mesh = mesh.process(&dataset, &query);

        group.bench_with_input(BenchmarkId::new("one_signature", len), &len, |b, _| {
            b.iter(|| {
                client::verify(
                    &query,
                    &r_one.records,
                    &r_one.vo,
                    &dataset.template,
                    verifier.as_ref(),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("multi_signature", len), &len, |b, _| {
            b.iter(|| {
                client::verify(
                    &query,
                    &r_multi.records,
                    &r_multi.vo,
                    &dataset.template,
                    verifier.as_ref(),
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("signature_mesh", len), &len, |b, _| {
            b.iter(|| {
                verify_mesh_response(&query, &r_mesh, &dataset.template, verifier.as_ref()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_rsa_vs_dsa_verification(c: &mut Criterion) {
    // Fig. 7c: a single signature verification under RSA vs DSA.
    let mut group = c.benchmark_group("fig7c_signature_verification");
    group.sample_size(20);

    let digest = vaq_crypto::sha256::sha256(b"fig7c bench digest");
    let rsa = SignatureScheme::new_rsa(192, 3);
    let dsa = SignatureScheme::new_dsa(256, 96, 3);
    let rsa_sig = rsa.sign_digest(&digest);
    let dsa_sig = dsa.sign_digest(&digest);
    let rsa_v = rsa.verifier();
    let dsa_v = dsa.verifier();

    group.bench_function("rsa_verify", |b| {
        b.iter(|| assert!(rsa_v.verify_digest(&digest, &rsa_sig)))
    });
    group.bench_function("dsa_verify", |b| {
        b.iter(|| assert!(dsa_v.verify_digest(&digest, &dsa_sig)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_client_verification,
    bench_rsa_vs_dsa_verification
);
criterion_main!(benches);
