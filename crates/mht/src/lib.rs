//! Merkle hash trees with contiguous-range proofs (the FMH-tree substrate).
//!
//! The paper's FMH-tree (Function Merkle Hash tree) is a bottom-up Merkle
//! tree built over the hashes of a sorted function list, including the
//! `f_min` / `f_max` sentinel tokens. When the number of nodes in a layer is
//! odd, the last node is carried into the next round unchanged (paper,
//! Sec. 3.1 step 2).
//!
//! This crate is agnostic about what the leaves are — it works on leaf
//! digests — so it serves both the per-subdomain FMH-trees of the IFMH
//! scheme and any other Merkle-authenticated list. The main operations are:
//!
//! * [`MerkleTree::build`] — construct the tree from leaf digests,
//! * [`MerkleTree::prove_range`] — produce a [`RangeProof`] that a
//!   contiguous run of leaves belongs to the tree,
//! * [`verify_range`] — recompute the root from the claimed leaves plus the
//!   proof, counting hash invocations so clients can account for their
//!   verification cost exactly as the paper's Fig. 7 does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vaq_crypto::sha256::{sha256_multi, sha256_pair, Digest};

/// Binds a root digest to its tree's leaf count.
///
/// With the paper's odd-node promotion rule, the *raw* Merkle root does not
/// commit to the number of leaves: a proof generated from an `n`-leaf tree
/// can reconstruct the identical root under a forged leaf count whose layer
/// shapes happen to agree on the proven window (e.g. 10 vs 12 leaves). Any
/// digest that gets signed must therefore bind the count explicitly — this is
/// exactly what the IFMH scheme's `subdomain_node_hash(root, leaf_count)`
/// does, and [`committed_root`] is the reusable mht-level form of it.
pub fn committed_root(root: &Digest, leaf_count: u32) -> Digest {
    sha256_multi(&[b"MHTC", root, &leaf_count.to_be_bytes()])
}

/// A Merkle hash tree stored layer by layer.
///
/// `layers[0]` holds the leaf digests in order; the last layer holds the
/// single root digest.
#[derive(Clone, Debug, PartialEq)]
pub struct MerkleTree {
    layers: Vec<Vec<Digest>>,
    /// Number of `H(a|b)` invocations performed while building.
    pub build_hash_ops: usize,
}

/// One sibling hash inside a [`RangeProof`], addressed by layer and index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofNode {
    /// Layer (0 = leaves).
    pub layer: u32,
    /// Index within the layer.
    pub index: u32,
    /// The node's digest.
    pub hash: Digest,
}

/// A proof that a contiguous range of leaves hashes up to the tree root.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RangeProof {
    /// Sibling digests needed to recompute the root.
    pub nodes: Vec<ProofNode>,
    /// Total number of leaves of the tree the proof was generated from
    /// (needed to reproduce the layer shapes during verification).
    pub leaf_count: u32,
}

impl RangeProof {
    /// Serialized size in bytes: each node carries a layer, an index and a
    /// 32-byte digest, plus the leaf count.
    pub fn byte_size(&self) -> usize {
        4 + self.nodes.len() * (4 + 4 + 32)
    }
}

/// Result of verifying a range proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The reconstructed root digest.
    pub root: Digest,
    /// Number of hash invocations performed during reconstruction.
    pub hash_ops: usize,
    /// The leaf count the proof claimed (echoed from [`RangeProof`]).
    pub leaf_count: u32,
}

impl VerifyOutcome {
    /// The count-binding commitment for the reconstructed root; compare this
    /// (not the raw root) against a trusted value when the leaf count itself
    /// must be authenticated. See [`committed_root`].
    pub fn committed_root(&self) -> Digest {
        committed_root(&self.root, self.leaf_count)
    }
}

/// Error cases for range-proof verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The supplied leaves are empty or not contiguous.
    BadLeafRange,
    /// A hash needed to compute a parent was neither derivable nor supplied.
    MissingNode {
        /// Layer of the missing node.
        layer: u32,
        /// Index of the missing node.
        index: u32,
    },
    /// A leaf index is outside the tree.
    LeafOutOfRange,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BadLeafRange => write!(f, "leaf range is empty or not contiguous"),
            VerifyError::MissingNode { layer, index } => {
                write!(f, "proof is missing node at layer {layer}, index {index}")
            }
            VerifyError::LeafOutOfRange => write!(f, "leaf index outside the tree"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl MerkleTree {
    /// Builds a tree over the given leaf digests.
    ///
    /// Panics if `leaves` is empty (the FMH-tree always has at least the two
    /// sentinel leaves).
    pub fn build(leaves: Vec<Digest>) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut layers = vec![leaves];
        let mut hash_ops = 0usize;
        while layers.last().expect("non-empty").len() > 1 {
            let prev = layers.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < prev.len() {
                next.push(sha256_pair(&prev[i], &prev[i + 1]));
                hash_ops += 1;
                i += 2;
            }
            if i < prev.len() {
                // Odd node: carried into the next round unchanged.
                next.push(prev[i]);
            }
            layers.push(next);
        }
        MerkleTree {
            layers,
            build_hash_ops: hash_ops,
        }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        *self
            .layers
            .last()
            .expect("non-empty tree")
            .first()
            .expect("root layer has one node")
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.layers[0].len()
    }

    /// The count-binding commitment over this tree's root; see
    /// [`committed_root`].
    pub fn committed_root(&self) -> Digest {
        committed_root(&self.root(), self.leaf_count() as u32)
    }

    /// Leaf digest at `index`.
    pub fn leaf(&self, index: usize) -> Digest {
        self.layers[0][index]
    }

    /// Number of layers (including the leaf layer).
    pub fn height(&self) -> usize {
        self.layers.len()
    }

    /// Total number of nodes across all layers (for structure-size
    /// accounting, Fig. 5c).
    pub fn node_count(&self) -> usize {
        self.layers.iter().map(|l| l.len()).sum()
    }

    /// Approximate in-memory size in bytes (digests only).
    pub fn byte_size(&self) -> usize {
        self.node_count() * 32
    }

    /// Produces a proof that leaves `lo..=hi` belong to this tree.
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn prove_range(&self, lo: usize, hi: usize) -> RangeProof {
        assert!(lo <= hi, "empty range");
        assert!(hi < self.leaf_count(), "leaf index out of range");
        let mut nodes = Vec::new();
        let mut lo = lo;
        let mut hi = hi;
        for (layer_idx, layer) in self.layers.iter().enumerate() {
            if layer.len() == 1 {
                break;
            }
            // To compute parents floor(lo/2)..=floor(hi/2) we need children
            // 2*floor(lo/2) ..= 2*floor(hi/2)+1 (clipped to the layer).
            let need_lo = (lo / 2) * 2;
            let need_hi = ((hi / 2) * 2 + 1).min(layer.len() - 1);
            let siblings = (need_lo..lo).chain((hi + 1)..=need_hi);
            nodes.extend(siblings.map(|idx| ProofNode {
                layer: layer_idx as u32,
                index: idx as u32,
                hash: layer[idx],
            }));
            lo /= 2;
            hi /= 2;
        }
        RangeProof {
            nodes,
            leaf_count: self.leaf_count() as u32,
        }
    }

    /// Produces a membership proof for a single leaf.
    pub fn prove_leaf(&self, index: usize) -> RangeProof {
        self.prove_range(index, index)
    }
}

/// Recomputes the root from a contiguous run of leaf digests starting at
/// `first_index`, plus the sibling hashes in `proof`.
///
/// Returns the reconstructed root and the number of hash operations; the
/// caller compares the root against a trusted (signed) value.
pub fn verify_range(
    first_index: usize,
    leaves: &[Digest],
    proof: &RangeProof,
) -> Result<VerifyOutcome, VerifyError> {
    if leaves.is_empty() {
        return Err(VerifyError::BadLeafRange);
    }
    let leaf_count = proof.leaf_count as usize;
    if leaf_count == 0 || first_index + leaves.len() > leaf_count {
        return Err(VerifyError::LeafOutOfRange);
    }

    // Known hashes for the current layer: contiguous [lo, hi] plus any proof
    // nodes for this layer.
    let mut hash_ops = 0usize;
    let mut layer_size = leaf_count;
    let mut layer_idx: u32 = 0;
    let mut lo = first_index;
    let mut hi = first_index + leaves.len() - 1;
    let mut known: Vec<Digest> = leaves.to_vec();

    let get = |known: &[Digest],
               lo: usize,
               hi: usize,
               proof: &RangeProof,
               layer_idx: u32,
               idx: usize|
     -> Option<Digest> {
        if idx >= lo && idx <= hi {
            Some(known[idx - lo])
        } else {
            proof
                .nodes
                .iter()
                .find(|n| n.layer == layer_idx && n.index as usize == idx)
                .map(|n| n.hash)
        }
    };

    while layer_size > 1 {
        let parent_size = layer_size.div_ceil(2);
        let parent_lo = lo / 2;
        let parent_hi = hi / 2;
        let mut parents: Vec<Digest> = Vec::with_capacity(parent_hi - parent_lo + 1);
        for p in parent_lo..=parent_hi {
            let left_idx = p * 2;
            let right_idx = p * 2 + 1;
            let left = get(&known, lo, hi, proof, layer_idx, left_idx).ok_or(
                VerifyError::MissingNode {
                    layer: layer_idx,
                    index: left_idx as u32,
                },
            )?;
            if right_idx >= layer_size {
                // Odd node carried upward unchanged.
                parents.push(left);
            } else {
                let right = get(&known, lo, hi, proof, layer_idx, right_idx).ok_or(
                    VerifyError::MissingNode {
                        layer: layer_idx,
                        index: right_idx as u32,
                    },
                )?;
                parents.push(sha256_pair(&left, &right));
                hash_ops += 1;
            }
        }
        known = parents;
        lo = parent_lo;
        hi = parent_hi;
        layer_size = parent_size;
        layer_idx += 1;
    }

    Ok(VerifyOutcome {
        root: known[0],
        hash_ops,
        leaf_count: proof.leaf_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_crypto::sha256::sha256;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let l = leaves(1);
        let t = MerkleTree::build(l.clone());
        assert_eq!(t.root(), l[0]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.build_hash_ops, 0);
    }

    #[test]
    fn two_leaf_tree_root_is_concat_hash() {
        let l = leaves(2);
        let t = MerkleTree::build(l.clone());
        assert_eq!(t.root(), sha256_pair(&l[0], &l[1]));
        assert_eq!(t.build_hash_ops, 1);
    }

    #[test]
    fn odd_leaf_promotion_matches_manual_construction() {
        // 3 leaves: layer1 = [H(0|1), leaf2]; root = H(H(0|1) | leaf2)
        let l = leaves(3);
        let t = MerkleTree::build(l.clone());
        let expected = sha256_pair(&sha256_pair(&l[0], &l[1]), &l[2]);
        assert_eq!(t.root(), expected);
    }

    #[test]
    fn build_is_deterministic_and_sensitive() {
        let t1 = MerkleTree::build(leaves(10));
        let t2 = MerkleTree::build(leaves(10));
        assert_eq!(t1.root(), t2.root());
        let mut changed = leaves(10);
        changed[3][0] ^= 1;
        let t3 = MerkleTree::build(changed);
        assert_ne!(t1.root(), t3.root());
    }

    #[test]
    fn prove_and_verify_full_range() {
        for n in [1usize, 2, 3, 4, 5, 8, 13, 16, 31] {
            let l = leaves(n);
            let t = MerkleTree::build(l.clone());
            let proof = t.prove_range(0, n - 1);
            let out = verify_range(0, &l, &proof).unwrap();
            assert_eq!(out.root, t.root(), "n = {n}");
            assert!(proof.nodes.is_empty(), "full range needs no siblings");
        }
    }

    #[test]
    fn prove_and_verify_every_subrange_small_trees() {
        for n in [1usize, 2, 3, 5, 7, 9, 12] {
            let l = leaves(n);
            let t = MerkleTree::build(l.clone());
            for lo in 0..n {
                for hi in lo..n {
                    let proof = t.prove_range(lo, hi);
                    let out = verify_range(lo, &l[lo..=hi], &proof).unwrap();
                    assert_eq!(out.root, t.root(), "n={n} lo={lo} hi={hi}");
                }
            }
        }
    }

    #[test]
    fn single_leaf_proofs() {
        let n = 20;
        let l = leaves(n);
        let t = MerkleTree::build(l.clone());
        for i in 0..n {
            let proof = t.prove_leaf(i);
            let out = verify_range(i, &l[i..=i], &proof).unwrap();
            assert_eq!(out.root, t.root());
            // A single-leaf path in a 20-leaf tree needs ~log2(20) siblings.
            assert!(proof.nodes.len() <= 6);
        }
    }

    #[test]
    fn verify_detects_tampered_leaf() {
        let l = leaves(16);
        let t = MerkleTree::build(l.clone());
        let proof = t.prove_range(4, 7);
        let mut bad = l[4..=7].to_vec();
        bad[1][0] ^= 0xff;
        let out = verify_range(4, &bad, &proof).unwrap();
        assert_ne!(out.root, t.root());
    }

    #[test]
    fn verify_detects_wrong_position() {
        let l = leaves(16);
        let t = MerkleTree::build(l.clone());
        let proof = t.prove_range(4, 7);
        // Present the same leaves shifted by one position: either an error or
        // a root mismatch, never a silent pass.
        if let Ok(out) = verify_range(5, &l[4..=7], &proof) {
            assert_ne!(out.root, t.root())
        }
    }

    #[test]
    fn verify_rejects_out_of_range_and_empty() {
        let l = leaves(8);
        let t = MerkleTree::build(l.clone());
        let proof = t.prove_range(2, 5);
        assert_eq!(
            verify_range(6, &l[2..=5], &proof),
            Err(VerifyError::LeafOutOfRange)
        );
        assert_eq!(verify_range(0, &[], &proof), Err(VerifyError::BadLeafRange));
    }

    #[test]
    fn verify_missing_proof_node_reported() {
        let l = leaves(16);
        let t = MerkleTree::build(l.clone());
        let mut proof = t.prove_range(4, 7);
        proof.nodes.pop();
        let err = verify_range(4, &l[4..=7], &proof).unwrap_err();
        assert!(matches!(err, VerifyError::MissingNode { .. }));
    }

    #[test]
    fn hash_ops_scale_logarithmically_for_single_leaf() {
        let l = leaves(1024);
        let t = MerkleTree::build(l.clone());
        let proof = t.prove_leaf(512);
        let out = verify_range(512, &l[512..=512], &proof).unwrap();
        assert_eq!(out.root, t.root());
        assert!(out.hash_ops <= 11, "hash_ops = {}", out.hash_ops);
    }

    #[test]
    fn proof_sizes_are_reported() {
        let l = leaves(64);
        let t = MerkleTree::build(l.clone());
        let proof = t.prove_range(10, 20);
        assert_eq!(proof.byte_size(), 4 + proof.nodes.len() * 40);
        assert!(t.byte_size() >= 64 * 32);
    }

    proptest::proptest! {
        #[test]
        fn prop_any_subrange_verifies(n in 1usize..80, seed in 0u64..1000) {
            let l: Vec<Digest> = (0..n).map(|i| sha256(&(i as u64 ^ seed).to_be_bytes())).collect();
            let t = MerkleTree::build(l.clone());
            let lo = (seed as usize) % n;
            let hi = lo + ((seed as usize / 7) % (n - lo));
            let proof = t.prove_range(lo, hi);
            let out = verify_range(lo, &l[lo..=hi], &proof).unwrap();
            proptest::prop_assert_eq!(out.root, t.root());
        }

        #[test]
        fn prop_tampering_any_leaf_changes_root(n in 2usize..60, which in 0usize..60) {
            let which = which % n;
            let l = (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect::<Vec<_>>();
            let t = MerkleTree::build(l.clone());
            let mut tampered = l.clone();
            tampered[which][5] ^= 0x80;
            let t2 = MerkleTree::build(tampered);
            proptest::prop_assert_ne!(t.root(), t2.root());
        }
    }
}
