//! Adversarial tests for the Merkle range proofs: an attacker who controls
//! the proof bytes (but not the signed root) must never get a wrong leaf set
//! accepted.

use vaq_crypto::sha256::{sha256, Digest};
use vaq_mht::{verify_range, MerkleTree, ProofNode, RangeProof};

fn leaves(n: usize, salt: u64) -> Vec<Digest> {
    (0..n)
        .map(|i| sha256(&(i as u64 ^ (salt << 32)).to_be_bytes()))
        .collect()
}

#[test]
fn swapping_two_leaves_changes_the_root() {
    let mut l = leaves(9, 1);
    let t1 = MerkleTree::build(l.clone());
    l.swap(2, 6);
    let t2 = MerkleTree::build(l);
    assert_ne!(t1.root(), t2.root());
}

#[test]
fn proof_for_one_tree_does_not_verify_leaves_of_another() {
    let la = leaves(12, 2);
    let lb = leaves(12, 3);
    let ta = MerkleTree::build(la.clone());
    let tb = MerkleTree::build(lb.clone());
    let proof_a = ta.prove_range(3, 6);
    // Presenting tree B's leaves with tree A's proof must not reproduce
    // tree A's root (nor B's, except by negligible-probability collision).
    let out = verify_range(3, &lb[3..=6], &proof_a).unwrap();
    assert_ne!(out.root, ta.root());
    assert_ne!(out.root, tb.root());
}

#[test]
fn inserting_an_extra_leaf_into_the_claimed_range_fails() {
    let l = leaves(16, 4);
    let t = MerkleTree::build(l.clone());
    let proof = t.prove_range(5, 8);
    // The adversary claims a 5-leaf range using the 4-leaf proof.
    let mut claimed = l[5..=8].to_vec();
    claimed.push(sha256(b"smuggled"));
    if let Ok(out) = verify_range(5, &claimed, &proof) {
        assert_ne!(out.root, t.root())
    }
}

#[test]
fn omitting_a_leaf_from_the_claimed_range_fails() {
    let l = leaves(16, 5);
    let t = MerkleTree::build(l.clone());
    let proof = t.prove_range(5, 8);
    let claimed = l[5..=7].to_vec(); // one leaf short
    if let Ok(out) = verify_range(5, &claimed, &proof) {
        assert_ne!(out.root, t.root())
    }
}

#[test]
fn extra_bogus_proof_nodes_cannot_override_derived_hashes() {
    let l = leaves(16, 6);
    let t = MerkleTree::build(l.clone());
    let mut proof = t.prove_range(4, 7);
    // Append decoy nodes claiming different hashes for positions the
    // verifier derives itself; the verifier must prefer its own derivation
    // (it only consults the proof for positions it cannot derive).
    proof.nodes.push(ProofNode {
        layer: 1,
        index: 2,
        hash: sha256(b"decoy"),
    });
    let out = verify_range(4, &l[4..=7], &proof).unwrap();
    assert_eq!(out.root, t.root());
}

#[test]
fn forged_leaf_count_changes_the_committed_root() {
    // With the paper's odd-node promotion rule the *raw* root of a Merkle
    // tree does not commit to its leaf count: a forged count whose layer
    // shapes agree with the honest tree on the proven window (e.g. 12 vs 10
    // leaves here) reconstructs the identical root from the identical proof
    // nodes. The signed commitment must therefore bind the count explicitly
    // — `committed_root` is that binding (the IFMH scheme's
    // `subdomain_node_hash` plays the same role at the protocol level) — and
    // a forged count must always change it.
    let l = leaves(10, 7);
    let t = MerkleTree::build(l.clone());
    let honest = t.prove_range(2, 4);
    for forged_count in [5u32, 8, 12, 64] {
        let proof = RangeProof {
            nodes: honest.nodes.clone(),
            leaf_count: forged_count,
        };
        if let Ok(out) = verify_range(2, &l[2..=4], &proof) {
            assert_ne!(
                out.committed_root(),
                t.committed_root(),
                "forged leaf count {forged_count} must not reproduce the committed root"
            )
        }
    }
}

#[test]
fn single_leaf_tree_proofs_are_trivial_but_sound() {
    let l = leaves(1, 8);
    let t = MerkleTree::build(l.clone());
    let proof = t.prove_leaf(0);
    assert!(proof.nodes.is_empty());
    let out = verify_range(0, &l, &proof).unwrap();
    assert_eq!(out.root, t.root());
    assert_eq!(out.hash_ops, 0);
    // A different leaf value cannot reproduce the root.
    let out = verify_range(0, &[sha256(b"other")], &proof).unwrap();
    assert_ne!(out.root, t.root());
}

#[test]
fn large_tree_full_and_partial_consistency() {
    let n = 1000;
    let l = leaves(n, 9);
    let t = MerkleTree::build(l.clone());
    // Several windows across the tree all reconstruct the same root.
    for (lo, hi) in [(0, 0), (0, 999), (500, 503), (990, 999), (1, 998)] {
        let proof = t.prove_range(lo, hi);
        let out = verify_range(lo, &l[lo..=hi], &proof).unwrap();
        assert_eq!(out.root, t.root(), "window [{lo}, {hi}]");
    }
}
