//! Workspace-level integration tests: the umbrella crate re-exports, the
//! IFMH schemes and the signature-mesh baseline must all agree on query
//! answers, and the comparative cost relationships the paper reports must
//! hold on real (small) instances.

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::{SignatureScheme, Signer};
use verified_analytics::service::spec_to_query as to_query;
use verified_analytics::service::{ServiceConfig, ShardedDeployment};
use verified_analytics::sigmesh::{verify_mesh_response, SignatureMesh};
use verified_analytics::workload::{applicant_table, uniform_dataset, QueryGenerator};

#[test]
fn sharded_tier_through_umbrella_reexports() {
    // The horizontal-scale tier end to end through the umbrella crate: the
    // owner partitions the applicant table across three shard services, a
    // data user scatter-gathers with full verification, and the merged
    // answer matches a local single server over the whole table.
    let dataset = applicant_table(15, 2027);
    let scheme = SignatureScheme::test_rsa(2027);
    let single = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme),
    );

    let deployment = ShardedDeployment::launch(
        &dataset,
        3,
        SigningMode::MultiSignature,
        2027,
        ServiceConfig::ephemeral(),
    )
    .expect("launch sharded deployment");
    let mut remote = deployment.client().expect("connect sharded client");

    for query in [
        Query::top_k(vec![1.0, 0.3, 0.6], 4),
        Query::range(vec![0.4, 0.4, 0.2], 0.3, 0.7),
        Query::knn(vec![0.2, 0.5, 0.3], 3, 0.5),
    ] {
        let merged = remote
            .query_verified(&query)
            .expect("verified sharded query");
        let local = single.process(&query);
        assert_eq!(merged.records, local.records, "{query}");
        assert_eq!(merged.scores.len(), merged.records.len());
    }

    // The same queries as one epoch-pinned batch: one frame per shard,
    // every sub-response verified, each sub-answer equal to the local
    // single server's.
    let queries = vec![
        Query::top_k(vec![1.0, 0.3, 0.6], 4),
        Query::range(vec![0.4, 0.4, 0.2], 0.3, 0.7),
        Query::knn(vec![0.2, 0.5, 0.3], 3, 0.5),
    ];
    let batched = remote
        .batch_verified(&queries)
        .expect("verified sharded batch");
    for (query, merged) in queries.iter().zip(&batched) {
        assert_eq!(merged.records, single.process(query).records, "{query}");
    }
    deployment.shutdown();
}

#[test]
fn all_three_schemes_agree_on_answers_and_verify() {
    let dataset = uniform_dataset(16, 2, 71);
    let scheme = SignatureScheme::test_rsa(71);
    let one = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme),
    );
    let multi = Server::new(
        dataset.clone(),
        IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme),
    );
    let mesh = SignatureMesh::build(&dataset, &scheme);
    let verifier = scheme.verifier();

    let mut generator = QueryGenerator::new(&dataset, 7);
    for spec in generator.mixed_batch(9, 3) {
        let query = to_query(&spec);

        let r1 = one.process(&query);
        let r2 = multi.process(&query);
        let r3 = mesh.process(&dataset, &query);

        // Same answers from every scheme.
        let ids = |records: &[verified_analytics::funcdb::Record]| {
            let mut v: Vec<u64> = records.iter().map(|r| r.id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&r1.records), ids(&r2.records), "query {query}");
        assert_eq!(ids(&r1.records), ids(&r3.records), "query {query}");

        // Every scheme's response verifies.
        assert!(client::verify(
            &query,
            &r1.records,
            &r1.vo,
            &dataset.template,
            verifier.as_ref()
        )
        .is_ok());
        assert!(client::verify(
            &query,
            &r2.records,
            &r2.vo,
            &dataset.template,
            verifier.as_ref()
        )
        .is_ok());
        assert!(verify_mesh_response(&query, &r3, &dataset.template, verifier.as_ref()).is_ok());
    }
}

#[test]
fn paper_cost_relationships_hold() {
    // The qualitative claims of the evaluation, checked end-to-end:
    let dataset = uniform_dataset(14, 2, 72);
    let scheme = SignatureScheme::test_rsa(72);
    let one_tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
    let multi_tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let mesh = SignatureMesh::build(&dataset, &scheme);

    // Fig. 5a: 1 signature vs #subdomains vs #subdomains × (n + 1).
    assert_eq!(one_tree.stats().signatures, 1);
    assert_eq!(multi_tree.stats().signatures, multi_tree.subdomain_count());
    assert_eq!(
        mesh.stats().signatures,
        mesh.cell_count() * (dataset.len() + 1)
    );
    assert!(mesh.stats().signatures > multi_tree.stats().signatures);

    let one = Server::new(dataset.clone(), one_tree);
    let multi = Server::new(dataset.clone(), multi_tree);
    let verifier = scheme.verifier();

    let query = Query::top_k(vec![0.45, 0.55], 3);
    let r1 = one.process(&query);
    let r2 = multi.process(&query);
    let r3 = mesh.process(&dataset, &query);

    // Fig. 6: the mesh's linear subdomain search dominates the tree search
    // once the arrangement is non-trivial.
    if mesh.cell_count() > 8 {
        assert!(
            r3.cost.imh_nodes_visited as f64 >= r1.cost.imh_nodes_visited as f64 / 2.0,
            "mesh linear scan ({}) should not be far below tree search ({})",
            r3.cost.imh_nodes_visited,
            r1.cost.imh_nodes_visited
        );
    }
    // Fig. 6: one-signature collects extra path siblings compared to
    // multi-signature.
    assert!(r1.cost.vo_nodes_collected >= r2.cost.vo_nodes_collected);

    // Fig. 7: the mesh verifies |q| + 1 signatures, the IFMH schemes one.
    let v1 = client::verify(
        &query,
        &r1.records,
        &r1.vo,
        &dataset.template,
        verifier.as_ref(),
    )
    .unwrap();
    let v2 = client::verify(
        &query,
        &r2.records,
        &r2.vo,
        &dataset.template,
        verifier.as_ref(),
    )
    .unwrap();
    let v3 = verify_mesh_response(&query, &r3, &dataset.template, verifier.as_ref()).unwrap();
    assert_eq!(v1.cost.signature_verifications, 1);
    assert_eq!(v2.cost.signature_verifications, 1);
    assert_eq!(v3.cost.signature_verifications, r3.records.len() + 1);
    // Fig. 7a: the mesh needs fewer hash operations than the tree schemes.
    assert!(v3.cost.hash_ops <= v1.cost.hash_ops);

    // Fig. 8: the mesh VO carries |q| + 1 signatures and grows linearly; for
    // a 3-record result it is already at least as large as the multi-sig VO
    // signature-wise.
    assert_eq!(r1.vo.signature_count(), 1);
    assert_eq!(r2.vo.signature_count(), 1);
    assert_eq!(r3.vo.signature_count(), r3.records.len() + 1);
}

#[test]
fn applicant_workflow_with_umbrella_reexports() {
    // Exercise the umbrella crate paths end to end (what a downstream user
    // would write after `cargo add verified-analytics`).
    let dataset = applicant_table(12, 9);
    let scheme = SignatureScheme::test_rsa(9);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    let public_key = scheme.public_key();

    let query = Query::top_k(vec![1.0, 0.3, 0.6], 4);
    let response = server.process(&query);
    let verified = client::verify(
        &query,
        &response.records,
        &response.vo,
        &dataset.template,
        &public_key,
    )
    .expect("verification must pass");
    assert_eq!(response.records.len(), 4);
    assert_eq!(verified.scores.len(), 4);
    // Scores are ascending in result order.
    for w in verified.scores.windows(2) {
        assert!(w[0] <= w[1] + 1e-9);
    }
}

#[test]
fn cross_scheme_tamper_detection() {
    // A record dropped from a result must be caught by both the IFMH client
    // and the mesh client.
    let dataset = uniform_dataset(18, 1, 73);
    let scheme = SignatureScheme::test_rsa(73);
    let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    let mesh = SignatureMesh::build(&dataset, &scheme);
    let verifier = scheme.verifier();
    let query = Query::range(vec![0.5], 0.1, 0.9);

    let mut r1 = server.process(&query);
    assert!(r1.records.len() >= 3);
    r1.records.remove(1);
    assert!(client::verify(
        &query,
        &r1.records,
        &r1.vo,
        &dataset.template,
        verifier.as_ref()
    )
    .is_err());

    let mut r3 = mesh.process(&dataset, &query);
    r3.records.remove(1);
    assert!(verify_mesh_response(&query, &r3, &dataset.template, verifier.as_ref()).is_err());
}
