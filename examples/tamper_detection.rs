//! A rogue's gallery of server misbehaviour, and how the client catches each
//! one. Also runs the same attacks against the signature-mesh baseline to
//! show both schemes achieve the security goal — the difference is cost, not
//! detection power.
//!
//! ```text
//! cargo run --release --example tamper_detection
//! ```

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::funcdb::Record;
use verified_analytics::sigmesh::{verify_mesh_response, SignatureMesh};
use verified_analytics::workload::uniform_dataset;

fn main() {
    let dataset = uniform_dataset(30, 1, 123);
    let scheme = SignatureScheme::new_rsa(512, 123);
    let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);
    let mesh = SignatureMesh::build(&dataset, &scheme);
    let public_key = scheme.public_key();

    let query = Query::range(vec![0.5], 0.2, 0.8);

    println!("=== IFMH-tree (one-signature) ===");
    {
        let honest = server.process(&query);
        let ok = client::verify(
            &query,
            &honest.records,
            &honest.vo,
            &dataset.template,
            &public_key,
        );
        println!(
            "honest answer ({} records): {}",
            honest.records.len(),
            verdict(ok.err())
        );

        let mut drop_one = server.process(&query);
        drop_one.records.remove(drop_one.records.len() / 2);
        let out = client::verify(
            &query,
            &drop_one.records,
            &drop_one.vo,
            &dataset.template,
            &public_key,
        );
        println!("drop a middle record:        {}", verdict(out.err()));

        let mut tampered = server.process(&query);
        tampered.records[0].attrs[0] += 0.01;
        let out = client::verify(
            &query,
            &tampered.records,
            &tampered.vo,
            &dataset.template,
            &public_key,
        );
        println!("tamper with an attribute:    {}", verdict(out.err()));

        let mut forged = server.process(&query);
        forged.records[0] = Record::new(4242, vec![0.5]);
        let out = client::verify(
            &query,
            &forged.records,
            &forged.vo,
            &dataset.template,
            &public_key,
        );
        println!("inject a forged record:      {}", verdict(out.err()));

        let narrow = server.process(&Query::range(vec![0.5], 0.3, 0.6));
        let out = client::verify(
            &query,
            &narrow.records,
            &narrow.vo,
            &dataset.template,
            &public_key,
        );
        println!("answer a narrower range:     {}", verdict(out.err()));
    }

    println!("\n=== Signature mesh (baseline) ===");
    {
        let honest = mesh.process(&dataset, &query);
        let ok = verify_mesh_response(&query, &honest, &dataset.template, &public_key);
        println!(
            "honest answer ({} records): {}",
            honest.records.len(),
            verdict(ok.err())
        );

        let mut drop_one = mesh.process(&dataset, &query);
        drop_one.records.remove(drop_one.records.len() / 2);
        let out = verify_mesh_response(&query, &drop_one, &dataset.template, &public_key);
        println!("drop a middle record:        {}", verdict(out.err()));

        let mut tampered = mesh.process(&dataset, &query);
        tampered.records[0].attrs[0] += 0.01;
        let out = verify_mesh_response(&query, &tampered, &dataset.template, &public_key);
        println!("tamper with an attribute:    {}", verdict(out.err()));
    }
}

fn verdict<E: std::fmt::Display>(err: Option<E>) -> String {
    match err {
        None => "ACCEPTED (verification passed)".to_string(),
        Some(e) => format!("REJECTED — {e}"),
    }
}
