//! Live-update lifecycle on a single service: the owner republishes the
//! dataset under a new epoch, the service hot-swaps it without dropping the
//! connection, and the verifying user detects the change through the typed
//! stale-epoch protocol — while a replayed response from the superseded
//! publication is rejected cryptographically.
//!
//! ```text
//! cargo run --release --example live_republish
//! ```

use verified_analytics::authquery::{verify_at_epoch, DataOwner, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::funcdb::Dataset;
use verified_analytics::service::{QueryService, ServiceClient, ServiceConfig};
use verified_analytics::workload::uniform_dataset;

fn main() {
    // --- Owner: first publication (epoch 0) -------------------------------
    let dataset = uniform_dataset(32, 2, 7);
    let mut owner = DataOwner::new(
        dataset.clone(),
        SignatureScheme::test_rsa(7),
        SigningMode::MultiSignature,
    );
    let metadata = owner.publish();
    println!(
        "owner: published {} records at epoch {}",
        owner.dataset().len(),
        metadata.epoch
    );

    // --- Service (binds port 0; the chosen port is printed) ---------------
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(2),
        Server::new(owner.dataset().clone(), owner.outsource()),
    )
    .expect("bind service");
    let addr = service.local_addr();
    println!("server: listening on {addr} (port {})", addr.port());

    // --- User: pinned query at the published epoch ------------------------
    let mut user = ServiceClient::connect(addr).expect("connect");
    let query = Query::top_k(vec![0.7, 0.3], 5);
    let response = user
        .query_at(metadata.epoch, &query)
        .expect("pinned query at epoch 0");
    verify_at_epoch(
        &query,
        &response.records,
        &response.vo,
        &metadata.template,
        &metadata.public_key,
        metadata.epoch,
    )
    .expect("epoch-0 response verifies");
    println!(
        "user: verified {} records at epoch {}",
        response.records.len(),
        metadata.epoch
    );

    // --- Owner: republish (three records change) → epoch 1 ----------------
    let mut updated = owner.dataset().clone();
    for record in updated.records.iter_mut().take(3) {
        record.attrs[0] = (record.attrs[0] + 0.41) % 1.0;
    }
    let updated = Dataset::new(updated.records, updated.template, updated.domain);
    let epoch = owner.republish(updated);
    let metadata = owner.publish();
    service
        .republish(Server::new(owner.dataset().clone(), owner.outsource()))
        .expect("hot swap");
    println!("owner: republished at epoch {epoch}; service hot-swapped, cache flushed");

    // --- User: the old pin is refused with a typed error ------------------
    let stale = user.query_at(0, &query).expect_err("old epoch refused");
    println!("user: old pin rejected — {stale}");
    assert!(stale.is_stale_epoch());

    // The same connection immediately works at the new epoch.
    let fresh = user
        .query_at(metadata.epoch, &query)
        .expect("pinned query at epoch 1");
    verify_at_epoch(
        &query,
        &fresh.records,
        &fresh.vo,
        &metadata.template,
        &metadata.public_key,
        metadata.epoch,
    )
    .expect("epoch-1 response verifies");
    println!(
        "user: verified {} records at epoch {}",
        fresh.records.len(),
        metadata.epoch
    );

    // --- Replay: the epoch-0 response cannot pass as current --------------
    let replay = verify_at_epoch(
        &query,
        &response.records,
        &response.vo,
        &metadata.template,
        &metadata.public_key,
        metadata.epoch,
    );
    println!(
        "user: replayed epoch-0 response rejected: {:?}",
        replay.expect_err("replay must be rejected")
    );

    let stats = service.shutdown();
    println!(
        "server: drained at epoch {} after {} requests",
        stats.epoch, stats.requests_served
    );
}
