//! End-to-end remote verification demo: the paper's three parties with a
//! real TCP hop between the untrusted server and the verifying user.
//!
//! ```text
//! cargo run --release --example remote_verify
//! ```
//!
//! The owner builds and signs the IFMH-tree, an untrusted `QueryService`
//! hosts it on an ephemeral localhost port, and client threads issue a mixed
//! top-k/range/KNN workload over the socket — verifying every response with
//! nothing but the owner's published template and public key. A final
//! tamper check shows why the verification matters.

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::service::{LoadGenerator, QueryService, ServiceClient, ServiceConfig};
use verified_analytics::workload::{uniform_dataset, QueryMix};

fn main() {
    // --- Owner ------------------------------------------------------------
    let dataset = uniform_dataset(24, 2, 77);
    let scheme = SignatureScheme::test_rsa(77);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let template = dataset.template.clone();
    let public_key = scheme.public_key();
    println!(
        "owner: outsourced {} records, published template + key",
        dataset.len()
    );

    // --- Untrusted server -------------------------------------------------
    // Port 0: the OS picks a free ephemeral port (printed below), so
    // concurrent runs of this example never collide on a hardcoded port.
    let service = QueryService::bind(
        ServiceConfig::ephemeral().workers(4),
        Server::new(dataset.clone(), tree),
    )
    .expect("bind service");
    let addr = service.local_addr();
    println!(
        "server: listening on {addr} (port {}), epoch {}",
        addr.port(),
        service.epoch()
    );

    // --- One verifying user ----------------------------------------------
    let mut user = ServiceClient::connect(addr).expect("connect");
    let rtt = user.ping().expect("ping");
    println!("user: connected, ping {rtt:?}");
    let query = Query::top_k(vec![0.8, 0.4], 5);
    let (response, verified) = user
        .query_verified(&query, &template, &public_key)
        .expect("remote response must verify");
    println!(
        "user: `{query}` -> {} records, verified sound+complete ({} hash ops, {} sig checks)",
        response.records.len(),
        verified.cost.hash_ops,
        verified.cost.signature_verifications
    );

    // --- A batch: many queries, one frame, every answer verified ----------
    let batch = vec![
        Query::top_k(vec![0.8, 0.4], 5),
        Query::range(vec![0.5, 0.5], 0.2, 0.7),
        Query::knn(vec![0.3, 0.9], 3, 0.5),
    ];
    let responses = user.batch(&batch).expect("batch answered in order");
    for (query, response) in batch.iter().zip(&responses) {
        client::verify(
            query,
            &response.records,
            &response.vo,
            &template,
            &public_key,
        )
        .expect("every batch member must verify");
    }
    println!(
        "user: batch of {} answered in one round-trip, every member verified \
         (items are cached individually — the top-k above was a cache hit)",
        batch.len()
    );

    // --- Tamper check: a forged record must be caught ---------------------
    let mut forged = user.query(&query).expect("raw response");
    forged.records[0].attrs[0] += 0.05;
    let tampered = client::verify(&query, &forged.records, &forged.vo, &template, &public_key);
    println!(
        "user: tampered response rejected: {}",
        tampered.expect_err("tampering must be detected")
    );

    // --- Heavy traffic: closed-loop load from 4 concurrent users ---------
    // Every fourth request is a 2..5-query batch, like a real dashboard
    // refreshing several panels at once.
    let generator = LoadGenerator {
        mix: QueryMix::weighted(2, 1, 1).with_batches(1, 2, 5),
        ..LoadGenerator::new(addr, 4, 25, template, public_key)
    };
    let report = generator.run(&dataset).expect("load run");
    println!("loadgen: {}", report.summary());
    assert_eq!(report.failures, 0, "every remote response must verify");

    // --- Graceful shutdown ------------------------------------------------
    let stats = service.shutdown();
    println!(
        "server: drained and stopped after {} requests ({} cache hits, {:.1}% hit rate)",
        stats.requests_served,
        stats.cache_hits,
        100.0 * stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64,
    );
}
