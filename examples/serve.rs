//! Stands up a networked query service over a synthetic dataset.
//!
//! ```text
//! cargo run --release --example serve -- [port] [records] [dims] [seed]
//! ```
//!
//! Prints the bound address and the owner's published verification material
//! (template arity + key size), then serves until the process is killed.
//! Pair it with the `remote_verify` example or `vaq_service::ServiceClient`
//! from another process.

use verified_analytics::authquery::{IfmhTree, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::service::{QueryService, ServiceConfig};
use verified_analytics::workload::uniform_dataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let port: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let dims: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("building dataset: {records} records, {dims} dims, seed {seed}");
    let dataset = uniform_dataset(records, dims, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);

    let config = ServiceConfig::ephemeral()
        .bind(format!("127.0.0.1:{port}").parse().expect("bind address"))
        .workers(4);
    let service = QueryService::bind(config, server).expect("bind service");
    println!("serving on {}", service.local_addr());
    println!(
        "publish to users out of band: template arity {} and the owner public key (seed {seed})",
        dataset.template.dims()
    );
    println!("press Ctrl-C to stop");

    // Serve until killed; report stats periodically so progress is visible.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let stats = service.stats();
        println!(
            "served {} requests ({} cache hits, {} errors, {} bytes out)",
            stats.requests_served, stats.cache_hits, stats.errors, stats.bytes_out
        );
    }
}
