//! Stands up a networked query service over a synthetic dataset.
//!
//! ```text
//! cargo run --release --example serve -- [records] [dims] [seed]
//! ```
//!
//! Binds port 0 (the OS picks a free ephemeral port, so concurrent runs
//! never collide) and prints the chosen address, then serves until the
//! process is killed. Pair it with the `remote_verify` example or
//! `vaq_service::ServiceClient` from another process.

use verified_analytics::authquery::{IfmhTree, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::service::{QueryService, ServiceConfig};
use verified_analytics::workload::uniform_dataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let dims: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("building dataset: {records} records, {dims} dims, seed {seed}");
    let dataset = uniform_dataset(records, dims, seed);
    let scheme = SignatureScheme::test_rsa(seed);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    let server = Server::new(dataset.clone(), tree);

    // Port 0: the OS assigns a free port, printed below — never hardcode a
    // port that collides when the example is run twice.
    let config = ServiceConfig::ephemeral().workers(4);
    let service = QueryService::bind(config, server).expect("bind service");
    let addr = service.local_addr();
    println!("serving on {addr} (port {})", addr.port());
    println!(
        "publish to users out of band: template arity {}, owner public key (seed {seed}), epoch {}",
        dataset.template.dims(),
        service.epoch()
    );
    println!("press Ctrl-C to stop");

    // Serve until killed; report stats periodically so progress is visible.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let stats = service.stats();
        println!(
            "epoch {}: served {} requests ({} cache hits, {} errors, {} bytes out)",
            stats.epoch, stats.requests_served, stats.cache_hits, stats.errors, stats.bytes_out
        );
    }
}
