//! Financial risk screening with verifiable range queries.
//!
//! A bank outsources its customer scoring table. An analyst asks for every
//! customer whose weighted risk score falls inside a target band (a range
//! query), verifies the answer, and inspects the size of the verification
//! object — the communication overhead the paper's Fig. 8 studies.
//!
//! ```text
//! cargo run --release --example financial_risk_range
//! ```

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::workload::financial_risk_table;

fn main() {
    let dataset = financial_risk_table(60, 99);
    let scheme = SignatureScheme::new_rsa(512, 990);

    // Compare the two signing modes on the same data.
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        let tree = IfmhTree::build(&dataset, mode, &scheme);
        println!(
            "\n[{mode}] {} subdomains, {} signatures, structure {} KiB",
            tree.subdomain_count(),
            tree.signature_count(),
            tree.stats().structure_bytes / 1024
        );
        let server = Server::new(dataset.clone(), tree);
        let public_key = scheme.public_key();

        // Weighting: income matters most, then debt ratio, then tenure.
        let weights = vec![1.0, 0.6, 0.3];
        // The analyst wants the mid-band customers: scores in [0.8, 1.1].
        let query = Query::range(weights, 0.8, 1.1);
        let response = server.process(&query);
        let verified = client::verify(
            &query,
            &response.records,
            &response.vo,
            &dataset.template,
            &public_key,
        )
        .expect("honest response must verify");

        println!(
            "  range [0.8, 1.1]: {} customers, VO = {} bytes, \
             server traversed {} nodes, client did {} hashes / {} signature check(s)",
            response.records.len(),
            response.vo.byte_size(),
            response.cost.total_nodes(),
            verified.cost.hash_ops,
            verified.cost.signature_verifications,
        );
        if let (Some(first), Some(last)) = (response.records.first(), response.records.last()) {
            println!(
                "  lowest in band: {:?}, highest in band: {:?}",
                first.label.as_deref().unwrap_or("?"),
                last.label.as_deref().unwrap_or("?")
            );
        }
    }
}
