//! Offline audit: the server's answers are written to disk in the `VAQ1`
//! wire format and verified later by a separate auditor process that only
//! holds the owner's published metadata.
//!
//! This mirrors how verification objects are used in practice: they are not
//! just checked interactively by the querying user, they can be archived and
//! re-verified by an auditor months later — the signature still binds the
//! result to the owner's original database.
//!
//! ```text
//! cargo run --release --example offline_audit
//! ```

use std::fs;
use std::path::PathBuf;
use verified_analytics::authquery::{client, process_batch, DataOwner, Query, Server, SigningMode};
use verified_analytics::wire::{WireDecode, WireEncode};
use verified_analytics::workload::financial_risk_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("vaq-offline-audit");
    fs::create_dir_all(&dir)?;

    // ------------------------------------------------------------- owner
    let dataset = financial_risk_table(40, 2026);
    let owner = DataOwner::with_rsa_key(dataset.clone(), 512, 2026, SigningMode::MultiSignature);
    let metadata = owner.publish();
    let tree = owner.outsource();
    println!(
        "owner: outsourced {} records ({} subdomains, {} signatures)",
        dataset.len(),
        tree.subdomain_count(),
        tree.signature_count()
    );

    // ------------------------------------------------------------ server
    let server = Server::new(dataset.clone(), tree);
    let queries = vec![
        Query::top_k(vec![1.0, 0.5, 0.25], 5),
        Query::range(vec![0.8, 0.8, 0.4], 0.6, 1.2),
        Query::knn(vec![0.5, 1.0, 0.5], 4, 1.0),
    ];
    let batch = process_batch(&server, &queries);

    // Archive every query/response pair as framed binary files.
    let mut files: Vec<(PathBuf, PathBuf)> = Vec::new();
    for (i, (query, response)) in queries.iter().zip(batch.responses.iter()).enumerate() {
        let q_path = dir.join(format!("query-{i}.vaq"));
        let r_path = dir.join(format!("response-{i}.vaq"));
        fs::write(&q_path, query.to_framed_bytes())?;
        fs::write(&r_path, response.to_framed_bytes())?;
        println!(
            "server: archived query {i} ({} result records, VO {} bytes on the wire)",
            response.records.len(),
            response.vo.to_wire_bytes().len()
        );
        files.push((q_path, r_path));
    }

    // ----------------------------------------------------------- auditor
    // The auditor reads the archived files back and verifies each one using
    // only the owner's published metadata (template + public key).
    println!(
        "\nauditor: re-verifying archived responses from {}",
        dir.display()
    );
    for (i, (q_path, r_path)) in files.iter().enumerate() {
        let query = Query::from_framed_bytes(&fs::read(q_path)?)?;
        let response =
            verified_analytics::authquery::QueryResponse::from_framed_bytes(&fs::read(r_path)?)?;
        match client::verify(
            &query,
            &response.records,
            &response.vo,
            &metadata.template,
            &metadata.public_key,
        ) {
            Ok(v) => println!(
                "  archive {i}: VERIFIED ({} records, {} hash ops, {} signature check)",
                response.records.len(),
                v.cost.hash_ops,
                v.cost.signature_verifications
            ),
            Err(e) => println!("  archive {i}: REJECTED — {e}"),
        }
    }

    // Demonstrate that tampering with an archived file is caught.
    let (q_path, r_path) = &files[0];
    let query = Query::from_framed_bytes(&fs::read(q_path)?)?;
    let mut response =
        verified_analytics::authquery::QueryResponse::from_framed_bytes(&fs::read(r_path)?)?;
    if let Some(first) = response.records.first_mut() {
        first.attrs[0] *= 1.01; // a 1% "adjustment" to an archived risk score
    }
    let out = client::verify(
        &query,
        &response.records,
        &response.vo,
        &metadata.template,
        &metadata.public_key,
    );
    println!(
        "\nauditor: after tampering with the archive: {}",
        match out {
            Ok(_) => "ACCEPTED (this would be a bug)".to_string(),
            Err(e) => format!("REJECTED — {e}"),
        }
    );
    Ok(())
}
