//! Quickstart: outsource a tiny table, ask a verifiable top-k query and
//! verify the answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::funcdb::{Dataset, Domain, FunctionTemplate, Record};

fn main() {
    // ----------------------------------------------------------------- owner
    // The running example of the paper (Fig. 1): applicants scored by
    // GPA·w1 + Awards·w2 + Papers·w3. Attributes are normalized to [0, 1].
    let template = FunctionTemplate::new(vec!["gpa", "awards", "papers"]);
    let records = vec![
        Record::with_label(0, vec![0.95, 0.25, 0.40], "alice"),
        Record::with_label(1, vec![0.80, 0.75, 0.10], "bob"),
        Record::with_label(2, vec![0.60, 0.50, 0.90], "carol"),
        Record::with_label(3, vec![0.90, 0.10, 0.20], "dave"),
        Record::with_label(4, vec![0.70, 0.90, 0.60], "erin"),
    ];
    let dataset = Dataset::new(records, template.clone(), Domain::unit(3));

    // The owner generates a signing key and builds the IFMH-tree.
    let scheme = SignatureScheme::new_rsa(512, 2024);
    let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
    println!(
        "owner: built IFMH-tree with {} subdomains, {} signature(s), {} bytes",
        tree.subdomain_count(),
        tree.signature_count(),
        tree.stats().structure_bytes
    );

    // ---------------------------------------------------------------- server
    let server = Server::new(dataset.clone(), tree);

    // ---------------------------------------------------------------- client
    // "Who are the top 2 applicants if I weight GPA twice as much as awards
    // and papers?"
    let query = Query::top_k(vec![1.0, 0.5, 0.5], 2);
    let response = server.process(&query);
    println!(
        "server: answered with {} records, VO of {} bytes",
        response.records.len(),
        response.vo.byte_size()
    );

    let public_key = scheme.public_key();
    match client::verify(
        &query,
        &response.records,
        &response.vo,
        &template,
        &public_key,
    ) {
        Ok(verified) => {
            println!("client: verification PASSED (soundness + completeness)");
            for (record, score) in response.records.iter().zip(verified.scores.iter()).rev() {
                println!(
                    "  {:>6}  score = {:.3}",
                    record.label.as_deref().unwrap_or("?"),
                    score
                );
            }
            println!(
                "client: cost = {} hash ops, {} signature verification(s)",
                verified.cost.hash_ops, verified.cost.signature_verifications
            );
        }
        Err(e) => println!("client: verification FAILED: {e}"),
    }
}
