//! Clinical cohort selection with verifiable KNN queries, signed with DSA.
//!
//! A research hospital outsources a patient risk table. A study coordinator
//! needs the k patients whose weighted risk score is closest to a reference
//! value (e.g. to match a case group), and must be able to prove to an
//! auditor that the cohort was selected correctly — no hand-picked and no
//! omitted patients.
//!
//! ```text
//! cargo run --release --example patient_knn
//! ```

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::workload::patient_risk_table;

fn main() {
    let dataset = patient_risk_table(80, 5);

    // DSA signatures (the paper's Fig. 7c compares RSA and DSA).
    let scheme = SignatureScheme::new_dsa(512, 160, 314159);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    println!(
        "owner: {} patients, {} subdomains (DSA-signed, {} signatures)",
        dataset.len(),
        tree.subdomain_count(),
        tree.signature_count()
    );
    let server = Server::new(dataset.clone(), tree);
    let public_key = scheme.public_key();

    // Risk weighting: age factor 0.7, biomarker 1.0; reference score 0.9.
    let weights = vec![0.7, 1.0];
    let reference = 0.9;
    for k in [5usize, 10] {
        let query = Query::knn(weights.clone(), k, reference);
        let response = server.process(&query);
        let verified = client::verify(
            &query,
            &response.records,
            &response.vo,
            &dataset.template,
            &public_key,
        )
        .expect("honest response must verify");

        println!("\nverified {k}-NN cohort around score {reference}:");
        let mut rows: Vec<_> = response
            .records
            .iter()
            .zip(verified.scores.iter())
            .collect();
        rows.sort_by(|a, b| {
            (a.1 - reference)
                .abs()
                .partial_cmp(&(b.1 - reference).abs())
                .unwrap()
        });
        for (record, score) in rows {
            println!(
                "  {:>12}  score = {:.3}  |Δ| = {:.3}",
                record.label.as_deref().unwrap_or("?"),
                score,
                (score - reference).abs()
            );
        }
    }
}
