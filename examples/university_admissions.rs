//! University admissions: the paper's motivating scenario at a realistic
//! size. A department outsources its applicant pool; committee members with
//! different priorities (research-heavy vs GPA-heavy weightings) issue
//! verifiable top-k queries, and one of them catches a server that tries to
//! quietly drop a strong applicant.
//!
//! ```text
//! cargo run --release --example university_admissions
//! ```

use verified_analytics::authquery::{client, IfmhTree, Query, Server, SigningMode};
use verified_analytics::crypto::SignatureScheme;
use verified_analytics::workload::applicant_table;

fn main() {
    // 40 applicants with GPA / awards / papers attributes.
    let dataset = applicant_table(40, 7);
    let scheme = SignatureScheme::new_rsa(512, 77);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    println!(
        "owner: {} applicants, {} subdomains, {} signatures",
        dataset.len(),
        tree.subdomain_count(),
        tree.signature_count()
    );
    let server = Server::new(dataset.clone(), tree);
    let public_key = scheme.public_key();

    // Two committee members with different priorities.
    let committee = [
        ("Prof. Gpa  (GPA-heavy)     ", vec![1.0, 0.2, 0.2]),
        ("Prof. Pubs (research-heavy)", vec![0.3, 0.4, 1.0]),
    ];

    for (who, weights) in &committee {
        let query = Query::top_k(weights.clone(), 5);
        let response = server.process(&query);
        let verified = client::verify(
            &query,
            &response.records,
            &response.vo,
            &dataset.template,
            &public_key,
        )
        .expect("honest server response must verify");
        println!("\n{who} — verified top 5 (best first):");
        for (record, score) in response.records.iter().zip(verified.scores.iter()).rev() {
            println!(
                "  {:>14}  gpa={:.2} awards={:.2} papers={:.2}  score={:.3}",
                record.label.as_deref().unwrap_or("?"),
                record.attrs[0],
                record.attrs[1],
                record.attrs[2],
                score
            );
        }
    }

    // A dishonest server drops the strongest applicant from the answer.
    println!("\n--- malicious server: silently dropping the strongest applicant ---");
    let query = Query::top_k(vec![1.0, 0.2, 0.2], 5);
    let mut response = server.process(&query);
    let dropped = response.records.pop().expect("non-empty result");
    match client::verify(
        &query,
        &response.records,
        &response.vo,
        &dataset.template,
        &public_key,
    ) {
        Ok(_) => println!("client: verification passed (THIS WOULD BE A BUG)"),
        Err(e) => println!(
            "client: detected the omission of {:?}: {e}",
            dropped.label.as_deref().unwrap_or("?")
        ),
    }
}
