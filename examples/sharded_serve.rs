//! Stands up a sharded deployment: one logical dataset partitioned across S
//! query services (each with a standby replica), plus a scatter-gather
//! self-test, a live republication and a standby failover.
//!
//! ```text
//! cargo run --release --example sharded_serve -- [shards] [records] [dims] [seed]
//! ```
//!
//! Every service binds port 0 — the OS picks free ephemeral ports, so
//! concurrent runs never collide — and the chosen addresses are printed
//! from the attested shard map itself.

use verified_analytics::authquery::{Query, SigningMode};
use verified_analytics::service::{ServiceConfig, ShardedClient, ShardedDeployment};
use verified_analytics::workload::uniform_dataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let dims: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("building dataset: {records} records, {dims} dims, seed {seed}");
    let dataset = uniform_dataset(records, dims, seed);

    println!("partitioning into {shards} shards (one signing key + one standby each)...");
    let mut deployment = ShardedDeployment::launch_with_standbys(
        &dataset,
        shards,
        SigningMode::MultiSignature,
        seed,
        ServiceConfig::ephemeral().workers(2),
        1,
    )
    .expect("launch sharded deployment");

    let publication = deployment.publication();
    println!(
        "attested shard map: epoch {}, {} shards, {} records total",
        publication.shard_map.map.epoch,
        publication.shard_map.map.shard_count,
        publication.shard_map.map.total_records
    );
    for entry in &publication.shard_map.map.shards {
        println!(
            "  shard {}: {} records, own verification key, serving at {:?}",
            entry.shard_id, entry.records, entry.addrs
        );
    }

    // Self-test: a verified scatter-gather round-trip of every query kind.
    let mut client =
        ShardedClient::connect_from_map(publication).expect("connect scatter-gather client");
    let weights = vec![1.0 / dims as f64; dims];
    for query in [
        Query::top_k(weights.clone(), 5),
        Query::range(weights.clone(), 0.2, 0.6),
        Query::knn(weights.clone(), 3, 0.5),
    ] {
        let merged = client
            .query_verified(&query)
            .expect("scatter-gather query verified");
        println!(
            "verified {query}: {} records merged from {:?} per-shard candidates",
            merged.records.len(),
            merged.per_shard_returned
        );
    }

    // A batch: one epoch-pinned frame per shard carries all queries, every
    // per-shard sub-response is verified and each sub-answer merged.
    let batch = vec![
        Query::top_k(weights.clone(), 4),
        Query::range(weights.clone(), 0.1, 0.5),
        Query::knn(weights.clone(), 2, 0.4),
    ];
    let merged = client
        .batch_verified(&batch)
        .expect("scatter-gather batch verified");
    println!(
        "verified a {}-query batch in one scatter per shard: {:?} records per answer",
        batch.len(),
        merged.iter().map(|m| m.records.len()).collect::<Vec<_>>()
    );

    // Live republication: the stale client is told, refreshes, reconverges.
    let epoch = deployment
        .republish(&dataset)
        .expect("hot republication under a connected client");
    println!("owner republished: deployment now serves epoch {epoch}");
    let query = Query::top_k(weights.clone(), 4);
    match client.query_verified(&query) {
        Err(e) if e.is_stale_epoch() => {
            let adopted = client.refresh().expect("re-fetch the signed map");
            println!("stale client detected the republication, refreshed to epoch {adopted}");
        }
        other => panic!("stale client should have been rejected, got {other:?}"),
    }
    client
        .query_verified(&query)
        .expect("converged client queries at the new epoch");

    // Failover: kill shard 0's primary; the standby completes the leg.
    deployment.stop_shard(0);
    let merged = client
        .query_verified(&query)
        .expect("standby serves the killed primary's leg");
    println!(
        "killed shard 0's primary; standby answered — {} records, fully verified",
        merged.records.len()
    );

    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let served: u64 = deployment.stats().iter().map(|s| s.requests_served).sum();
        println!(
            "epoch {}: {served} primary shard-requests served across {shards} shards",
            deployment.epoch()
        );
    }
}
