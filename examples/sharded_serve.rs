//! Stands up a sharded deployment: one logical dataset partitioned across S
//! query services, plus a scatter-gather self-test.
//!
//! ```text
//! cargo run --release --example sharded_serve -- [shards] [records] [dims] [seed]
//! ```
//!
//! Prints the owner's attested shard map (shard count, per-shard record
//! counts), the per-shard addresses, and a verified scatter-gather
//! round-trip of all three query kinds, then serves until killed.

use verified_analytics::authquery::{Query, SigningMode};
use verified_analytics::service::{ServiceConfig, ShardedDeployment};
use verified_analytics::workload::uniform_dataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let dims: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("building dataset: {records} records, {dims} dims, seed {seed}");
    let dataset = uniform_dataset(records, dims, seed);

    println!("partitioning into {shards} shards, one signing key per shard...");
    let deployment = ShardedDeployment::launch(
        &dataset,
        shards,
        SigningMode::MultiSignature,
        seed,
        ServiceConfig::ephemeral().workers(2),
    )
    .expect("launch sharded deployment");

    let publication = deployment.publication();
    println!(
        "attested shard map: {} shards, {} records total",
        publication.shard_map.map.shard_count, publication.shard_map.map.total_records
    );
    for (entry, addr) in publication
        .shard_map
        .map
        .shards
        .iter()
        .zip(deployment.addrs())
    {
        println!(
            "  shard {} @ {addr}: {} records, own verification key",
            entry.shard_id, entry.records
        );
    }

    // Self-test: a verified scatter-gather round-trip of every query kind.
    let mut client = deployment.client().expect("connect scatter-gather client");
    let weights = vec![1.0 / dims as f64; dims];
    for query in [
        Query::top_k(weights.clone(), 5),
        Query::range(weights.clone(), 0.2, 0.6),
        Query::knn(weights, 3, 0.5),
    ] {
        let merged = client
            .query_verified(&query)
            .expect("scatter-gather query verified");
        println!(
            "verified {query}: {} records merged from {:?} per-shard candidates",
            merged.records.len(),
            merged.per_shard_returned
        );
    }

    println!("press Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        let served: u64 = deployment.stats().iter().map(|s| s.requests_served).sum();
        println!("{served} shard-requests served across {shards} shards");
    }
}
