//! Umbrella crate re-exporting the verified-analytics workspace.
pub use vaq_authquery as authquery;
pub use vaq_crypto as crypto;
pub use vaq_funcdb as funcdb;
pub use vaq_itree as itree;
pub use vaq_mht as mht;
pub use vaq_service as service;
pub use vaq_sigmesh as sigmesh;
pub use vaq_wire as wire;
pub use vaq_workload as workload;
